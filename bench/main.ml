(* Benchmark harness.

   Phase 1 regenerates the paper's evaluation artifacts — the rows of
   Table I, Table II and Table III, plus the data series behind the six
   distribution figures — and prints them exactly as reported.

   Phase 2 times the machinery with Bechamel: one Test.make per table
   and per figure, plus the ablations called out in DESIGN.md (analysis
   modes, pruned vs full checkpoint writes, region-codec granularity,
   AD recording overhead).

   Run with:
     dune exec bench/main.exe -- [--json] [--verbose] [--jobs N] [--out PATH]

   Flags:
     --json       additionally write machine-readable results to
                  BENCH_<date>.json (per-group name, time, tape nodes,
                  jobs used) so the perf trajectory is recorded
     --out PATH   where --json writes its snapshot (default: the repo
                  root, located by walking up from the executable to
                  dune-project — NOT the invocation cwd)
     --verbose    print per-analysis timing lines to stderr
     --jobs N     domain-pool width for the parallel-suite group
                  (default: the hardware's recommended domain count)    *)

open Bechamel
module Crit = Scvad_core.Criticality

let say fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Flags and the JSON results ledger                                   *)
(* ------------------------------------------------------------------ *)

let json_out = ref false
let verbose = ref false
let jobs = ref (Scvad_par.Pool.default_jobs ())
let out_path : string option ref = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json_out := true;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest
        | Some _ | None ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2)
    | "--out" :: p :: rest ->
        out_path := Some p;
        parse rest
    | "--out" :: [] ->
        prerr_endline "bench: --out expects a path";
        exit 2
    | arg :: _ ->
        Printf.eprintf
          "bench: unknown argument %s (known: --json --verbose --jobs N --out \
           PATH)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* The default snapshot location is the repo root — located by walking
   up from the bench executable (which lives in _build/default/bench/)
   to the directory holding dune-project — so snapshots stop landing in
   whatever directory the bench happened to be launched from. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  let exe_dir = Filename.dirname Sys.executable_name in
  let start =
    if Filename.is_relative exe_dir then
      Filename.concat (Sys.getcwd ()) exe_dir
    else exe_dir
  in
  match up start with
  | Some root -> root
  | None -> ( match up (Sys.getcwd ()) with Some root -> root | None -> ".")

(* Every measurement lands here; [--json] serializes the ledger. *)
type entry = {
  e_group : string;
  e_name : string;
  e_metric : string; (* "ns/run" or "s" *)
  e_value : float;
  e_tape_nodes : int option;
  e_jobs : int option;
  (* segmented-tape extras: the recompute-vs-store trade of a
     memory-budgeted recording *)
  e_budget_nodes : int option;
  e_peak_live_nodes : int option;
  e_replays : int option;
  e_replayed_nodes : int option;
  (* frontier-sweep extras: how much of the tape the backward sweep
     actually inspected *)
  e_visited_nodes : int option;
  e_active_fraction : float option;
}

let entries : entry list ref = ref []

let record ?tape_nodes ?jobs:ejobs ?budget_nodes ?peak_live_nodes ?replays
    ?replayed_nodes ?visited_nodes ?active_fraction ~group ~name ~metric value =
  entries :=
    { e_group = group; e_name = name; e_metric = metric; e_value = value;
      e_tape_nodes = tape_nodes; e_jobs = ejobs; e_budget_nodes = budget_nodes;
      e_peak_live_nodes = peak_live_nodes; e_replays = replays;
      e_replayed_nodes = replayed_nodes; e_visited_nodes = visited_nodes;
      e_active_fraction = active_fraction }
    :: !entries

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json () =
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let path =
    match !out_path with
    | Some p -> p
    | None ->
        Filename.concat (repo_root ()) (Printf.sprintf "BENCH_%s.json" date)
  in
  let oc = open_out path in
  let field_opt name = function
    | None -> ""
    | Some v -> Printf.sprintf ", \"%s\": %d" name v
  in
  let field_opt_f name = function
    | None -> ""
    | Some v -> Printf.sprintf ", \"%s\": %.6g" name v
  in
  Printf.fprintf oc
    "{\n  \"date\": \"%s\",\n  \"jobs\": %d,\n  \"hw_threads\": %d,\n\
    \  \"results\": [\n"
    date !jobs
    (Scvad_par.Pool.hardware_threads ());
  let rows =
    List.rev_map
      (fun e ->
        Printf.sprintf
          "    {\"group\": \"%s\", \"name\": \"%s\", \"metric\": \"%s\", \
           \"value\": %.6g%s%s}"
          (json_escape e.e_group) (json_escape e.e_name)
          (json_escape e.e_metric) e.e_value
          (field_opt "tape_nodes" e.e_tape_nodes)
          (String.concat ""
             [ field_opt "jobs" e.e_jobs;
               field_opt "budget_nodes" e.e_budget_nodes;
               field_opt "peak_live_nodes" e.e_peak_live_nodes;
               field_opt "replays" e.e_replays;
               field_opt "replayed_nodes" e.e_replayed_nodes;
               field_opt "visited_nodes" e.e_visited_nodes;
               field_opt_f "active_fraction" e.e_active_fraction ]))
      !entries
  in
  output_string oc (String.concat ",\n" rows);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  say "wrote %s (%d results)\n" path (List.length !entries)

(* ------------------------------------------------------------------ *)
(* Phase 1: regenerate the paper's rows and series                     *)
(* ------------------------------------------------------------------ *)

let reports = Hashtbl.create 8

let report_of (module A : Scvad_core.App.S) =
  match Hashtbl.find_opt reports A.name with
  | Some r -> r
  | None ->
      let t0 = Unix.gettimeofday () in
      let r = Scvad_core.Analyzer.run (module A) in
      let dt = Unix.gettimeofday () -. t0 in
      if !verbose then
        Printf.eprintf "[bench] analysis %s: %.2fs (%d tape nodes)\n%!" A.name
          dt r.Crit.tape_nodes;
      let visited_nodes, active_fraction =
        match r.Crit.sweep_profile with
        | None -> (None, None)
        | Some w ->
            (Some w.Crit.w_visited_nodes, Some w.Crit.w_active_fraction)
      in
      record ~tape_nodes:r.Crit.tape_nodes ~jobs:1 ?visited_nodes
        ?active_fraction ~group:"analysis" ~name:A.name ~metric:"s" dt;
      Hashtbl.add reports A.name r;
      r

let phase1 () =
  let apps = Scvad_npb.Suite.all in
  say "%s\n" (Scvad_core.Report.table1 apps);
  let rs = List.map (fun a -> report_of a) apps in
  say "%s\n" (Scvad_core.Report.table2 rs);
  let rows =
    List.map
      (fun (module A : Scvad_core.App.S) ->
        Scvad_core.Report.table3_row (module A) (report_of (module A)))
      apps
  in
  say "%s\n" (Scvad_core.Report.table3 rows);
  (* Figure series: the numeric content of Figs. 3-8. *)
  let v name var = Crit.find (report_of (Option.get (Scvad_npb.Suite.find name))) var in
  let bt_u = v "bt" "u" and mg_u = v "mg" "u" and mg_r = v "mg" "r" in
  let cg_x = v "cg" "x" and lu_u = v "lu" "u" and ft_y = v "ft" "y" in
  let cube4 vr m =
    Scvad_viz.Cube.component ~dims4:(Scvad_nd.Shape.dims vr.Crit.shape)
      vr.Crit.mask ~m
  in
  say "FIGURE SERIES\n";
  say "Fig 3 (BT u, component 0): uncritical planes = %s\n"
    (String.concat ", " (Scvad_viz.Cube.uncritical_planes (cube4 bt_u 0)));
  say "Fig 4 (MG u): critical spans = %s\n"
    (Scvad_checkpoint.Regions.to_string mg_u.Crit.regions);
  say "Fig 5 (MG r): %d critical (= 33^3, the restriction read set); \
       pattern period 34: |%s|\n"
    (Crit.critical mg_r)
    (Scvad_viz.Strip.window ~width:68
       (Scvad_viz.Strip.of_report mg_r)
       ~lo:(34 * 34) ~hi:((34 * 34) + (2 * 34)));
  say "Fig 6 (CG x): critical spans = %s\n"
    (Scvad_checkpoint.Regions.to_string cg_x.Crit.regions);
  let u4 = cube4 lu_u 4 in
  let c4, un4 = Scvad_viz.Cube.counts u4 in
  say "Fig 7 (LU u[.][4]): %d critical / %d uncritical (union of sweeps)\n" c4
    un4;
  say "Fig 8 (FT y): uncritical planes = %s (%d cells)\n"
    (String.concat ", "
       (Scvad_viz.Cube.uncritical_planes
          (Scvad_viz.Cube.of_mask ~dims:(Scvad_nd.Shape.dims ft_y.Crit.shape)
             ft_y.Crit.mask)))
    (Crit.uncritical ft_y);
  say "\n";
  (* Operational reading of Table III: Young-model overhead at the
     optimal interval, full vs pruned, for a canonical large system
     (checkpoint cost 60 s at full size, MTBF 24 h, restart 300 s). *)
  let base =
    { Scvad_checkpoint.Interval.checkpoint_cost = 60.; mtbf = 86_400.;
      restart_cost = 300. }
  in
  (* Related-work baseline: per-checkpoint bytes under four policies. *)
  say "CHECKPOINT POLICY COMPARISON (payload bytes: base ckpt, then deltas)\n";
  say "%-10s %12s %12s %14s %12s\n" "Benchmark" "full" "pruned" "incremental"
    "combined";
  List.iter
    (fun name ->
      let (module A : Scvad_core.App.S) =
        Option.get (Scvad_npb.Suite.find name)
      in
      let c =
        Scvad_core.Incremental.storage_comparison ~checkpoints:3 (module A)
          (report_of (module A))
      in
      let second l = List.nth l 1 in
      say "%-10s %12d %12d %14d %12d   (steady-state delta)\n"
        (String.uppercase_ascii name)
        (second c.Scvad_core.Incremental.full)
        (second c.Scvad_core.Incremental.pruned)
        (second c.Scvad_core.Incremental.incremental)
        (second c.Scvad_core.Incremental.combined))
    [ "bt"; "sp"; "mg"; "cg"; "lu" ];
  say "\n";
  say "OPERATIONAL MODEL (Young): C_full=60s, MTBF=24h, R=300s\n";
  say "%-10s %14s %12s %12s %14s\n" "Benchmark" "kept fraction" "tau full"
    "tau pruned" "overhead drop";
  List.iter
    (fun (module A : Scvad_core.App.S) ->
      let row = Scvad_core.Report.table3_row (module A) (report_of (module A)) in
      let kept =
        float_of_int row.Scvad_core.Report.optimized_bytes
        /. float_of_int row.Scvad_core.Report.original_bytes
      in
      let c = Scvad_checkpoint.Interval.compare_pruning base ~kept_fraction:kept in
      say "%-10s %13.1f%% %10.0f s %10.0f s %13.2f%%\n"
        (String.uppercase_ascii A.name)
        (100. *. kept) c.Scvad_checkpoint.Interval.full_tau
        c.Scvad_checkpoint.Interval.pruned_tau
        (100.
         *. (1.
             -. (c.Scvad_checkpoint.Interval.pruned_overhead
                 /. c.Scvad_checkpoint.Interval.full_overhead))))
    apps;
  say "\n%!"

(* ------------------------------------------------------------------ *)
(* Phase 2: Bechamel timings                                           *)
(* ------------------------------------------------------------------ *)

let app name = Option.get (Scvad_npb.Suite.find name)

(* Table I: building the variable registry of all eight benchmarks. *)
let bench_table1 =
  Test.make ~name:"table1/registry"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Scvad_core.Report.table1 Scvad_npb.Suite.all)))

(* Table II: one reverse-gradient analysis per benchmark (FT is the
   heavyweight: a taped 64^3 inverse FFT). *)
let bench_table2 name =
  let (module A : Scvad_core.App.S) = app name in
  Test.make
    ~name:(Printf.sprintf "table2/analyze_%s" name)
    (Staged.stage (fun () ->
         Sys.opaque_identity (Scvad_core.Analyzer.run (module A))))

(* Table III: full vs pruned checkpoint encoding. *)
let snapshot_fn name pruned =
  let (module A : Scvad_core.App.S) = app name in
  let report = report_of (module A) in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  fun () ->
    let file =
      Scvad_core.Pruned.snapshot
        ?report:(if pruned then Some report else None)
        ~app:name ~iteration:1 ~float_vars:(I.float_vars st)
        ~int_vars:(I.int_vars st) ()
    in
    Sys.opaque_identity (Scvad_checkpoint.Ckpt_format.encode file)

let bench_table3 name =
  [ Test.make
      ~name:(Printf.sprintf "table3/%s_full" name)
      (Staged.stage (snapshot_fn name false));
    Test.make
      ~name:(Printf.sprintf "table3/%s_pruned" name)
      (Staged.stage (snapshot_fn name true)) ]

(* Figures: rendering cost. *)
let bench_figures =
  let bt = report_of (app "bt") in
  let mg = report_of (app "mg") in
  let cg = report_of (app "cg") in
  let lu = report_of (app "lu") in
  let ft = report_of (app "ft") in
  [ Test.make ~name:"fig3/bt_cube"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig3 (Crit.find bt "u"))));
    Test.make ~name:"fig4/mg_u_strip"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig4 (Crit.find mg "u"))));
    Test.make ~name:"fig5/mg_r_strip"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig5 (Crit.find mg "r"))));
    Test.make ~name:"fig6/cg_x_strip"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig6 (Crit.find cg "x"))));
    Test.make ~name:"fig7/lu_u4_cube"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig7 (Crit.find lu "u"))));
    Test.make ~name:"fig8/ft_y_plane"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig8 (Crit.find ft "y")))) ]

(* Ablation: the three analysis modes on the reduced CG (forward probe
   is O(elements) full runs — the cost the one-sweep reverse mode
   saves). *)
let bench_modes =
  List.map
    (fun (label, mode) ->
      Test.make
        ~name:(Printf.sprintf "ablation/mode_%s_cg_tiny" label)
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Scvad_core.Analyzer.run
                  ~config:Scvad_core.Analyzer.Config.(default |> with_mode mode)
                  (module Scvad_npb.Cg.Tiny_app)))))
    [ ("reverse", Crit.Reverse_gradient);
      ("forward", Crit.Forward_probe);
      ("activity", Crit.Activity_dependence) ]

(* Ablation: AD recording overhead — one BT time step in float mode vs
   recording on the reverse tape. *)
let bench_ad_overhead =
  let float_step =
    let module I = Scvad_npb.Bt.Make_generic (Scvad_ad.Float_scalar) in
    let st = I.create () in
    fun () -> Sys.opaque_identity (I.run st ~from:0 ~until:1)
  in
  let taped_step () =
    let tape = Scvad_ad.Tape.create ~capacity_hint:(1 lsl 20) () in
    let module RS = Scvad_ad.Reverse.Scalar_of (struct
      let tape = tape
    end) in
    let module I = Scvad_npb.Bt.Make_generic (RS) in
    let st = I.create () in
    (* lift u so the step actually records *)
    List.iter
      (fun v ->
        ignore
          (Scvad_core.Variable.lift_capture v (Scvad_ad.Reverse.lift tape)))
      (I.float_vars st);
    Sys.opaque_identity (I.run st ~from:0 ~until:1)
  in
  [ Test.make ~name:"ablation/bt_step_float" (Staged.stage float_step);
    Test.make ~name:"ablation/bt_step_reverse_tape" (Staged.stage taped_step) ]

(* Baseline: incremental (dirty-tracking) snapshot cost vs pruned. *)
let bench_incremental =
  let (module A : Scvad_core.App.S) = app "bt" in
  let report = report_of (module A) in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:2;
  let tracker = Scvad_core.Incremental.create_tracker () in
  (* Prime the tracker so the measured call produces a delta. *)
  ignore
    (Scvad_core.Incremental.snapshot tracker
       ~mode:(Scvad_core.Incremental.Combined_with report) ~app:"bt"
       ~iteration:1 ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ());
  [ Test.make ~name:"baseline/incremental_delta_bt"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_core.Incremental.snapshot tracker
                ~mode:(Scvad_core.Incremental.Combined_with report) ~app:"bt"
                ~iteration:2 ~float_vars:(I.float_vars st)
                ~int_vars:(I.int_vars st) ()))) ]

(* Extension: impact analysis + mixed-precision snapshot cost. *)
let bench_mixed =
  let impact =
    Scvad_core.Analyzer.analyze_impact ~at_iter:1 ~niter:2
      (module Scvad_npb.Cg.App)
  in
  let plans = Scvad_core.Mixed.plans_of_report ~threshold:1e-6 impact in
  let module I = Scvad_npb.Cg.App.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  [ Test.make ~name:"extension/impact_analysis_cg"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_core.Analyzer.analyze_impact ~at_iter:1 ~niter:2
                (module Scvad_npb.Cg.App))));
    Test.make ~name:"extension/mixed_snapshot_cg"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_checkpoint.Ckpt_format.encode
                (Scvad_core.Mixed.snapshot ~plans ~app:"cg" ~iteration:1
                   ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ())))) ]

(* Resilience: end-to-end checkpoint-write throughput, with and without
   the read-back CRC verification that guards the atomic rename. *)
let bench_store_writes =
  let (module A : Scvad_core.App.S) = app "bt" in
  let report = report_of (module A) in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  let file =
    Scvad_core.Pruned.snapshot ~report ~app:"bt" ~iteration:1
      ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let store verify_writes tag =
    Scvad_checkpoint.Store.create ~verify_writes
      ~retention:{ Scvad_checkpoint.Store.keep_last = Some 2; keep_every = None }
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "scvad_bench_store_%s_%d" tag (Unix.getpid ())))
  in
  let verified = store true "v" and unverified = store false "nv" in
  [ Test.make ~name:"resilience/bt_save_verified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_checkpoint.Store.save verified file)));
    Test.make ~name:"resilience/bt_save_unverified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_checkpoint.Store.save unverified file))) ]

(* Tape hot path: the seed's monolithic grow-by-doubling tape, kept
   here as the baseline the chunked tape replaced.  Push/backward
   throughput of the two layouts is compared head to head. *)
module Seed_tape = struct
  type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    mutable n : int;
    mutable lhs : i32;
    mutable rhs : i32;
    mutable dlhs : f64;
    mutable drhs : f64;
  }

  let alloc_i32 n : i32 = Bigarray.(Array1.create int32 c_layout n)
  let alloc_f64 n : f64 = Bigarray.(Array1.create float64 c_layout n)

  let create ?(capacity = 1024) () =
    let capacity = Stdlib.max capacity 16 in
    { n = 0; lhs = alloc_i32 capacity; rhs = alloc_i32 capacity;
      dlhs = alloc_f64 capacity; drhs = alloc_f64 capacity }

  let capacity t = Bigarray.Array1.dim t.lhs

  let grow t =
    let old = capacity t in
    let cap = old * 2 in
    let lhs = alloc_i32 cap and rhs = alloc_i32 cap in
    let dlhs = alloc_f64 cap and drhs = alloc_f64 cap in
    Bigarray.Array1.(blit t.lhs (sub lhs 0 old));
    Bigarray.Array1.(blit t.rhs (sub rhs 0 old));
    Bigarray.Array1.(blit t.dlhs (sub dlhs 0 old));
    Bigarray.Array1.(blit t.drhs (sub drhs 0 old));
    t.lhs <- lhs;
    t.rhs <- rhs;
    t.dlhs <- dlhs;
    t.drhs <- drhs

  let push t l dl r dr =
    if t.n = capacity t then grow t;
    let i = t.n in
    t.lhs.{i} <- Int32.of_int l;
    t.rhs.{i} <- Int32.of_int r;
    t.dlhs.{i} <- dl;
    t.drhs.{i} <- dr;
    t.n <- i + 1;
    i

  let backward t ~output =
    let adj = alloc_f64 (output + 1) in
    Bigarray.Array1.fill adj 0.;
    adj.{output} <- 1.;
    for i = output downto 0 do
      let a = adj.{i} in
      (* lint: allow float-equality — exact-zero adjoint skip, replicated
         from the seed tape so the layout ablation stays faithful *)
      if a <> 0. then begin
        let l = Int32.to_int t.lhs.{i} in
        if l >= 0 then adj.{l} <- adj.{l} +. (a *. t.dlhs.{i});
        let r = Int32.to_int t.rhs.{i} in
        if r >= 0 then adj.{r} <- adj.{r} +. (a *. t.drhs.{i})
      end
    done;
    adj
end

let tape_bench_nodes = 1 lsl 20

(* A fan-in chain: node i depends on i-1 and a var, every adjoint
   nonzero, so backward touches the whole tape. *)
let bench_tape =
  let fill_seed t =
    let v = Seed_tape.push t (-1) 0. (-1) 0. in
    let last = ref v in
    for _ = 2 to tape_bench_nodes do
      last := Seed_tape.push t !last 1. v 1.
    done;
    !last
  in
  let fill_chunked t =
    let v = Scvad_ad.Tape.fresh_var t in
    let last = ref v in
    for _ = 2 to tape_bench_nodes do
      last := Scvad_ad.Tape.push2 t !last 1. v 1.
    done;
    !last
  in
  let seed_full = Seed_tape.create ~capacity:16 () in
  let seed_out = fill_seed seed_full in
  let chunked_full = Scvad_ad.Tape.create ~capacity_hint:(1 lsl 14) () in
  let chunked_out = fill_chunked chunked_full in
  [ Test.make ~name:"tape/push_1M_seed_doubling"
      (Staged.stage (fun () ->
           let t = Seed_tape.create ~capacity:16 () in
           Sys.opaque_identity (fill_seed t)));
    Test.make ~name:"tape/push_1M_chunked_grow"
      (Staged.stage (fun () ->
           let t = Scvad_ad.Tape.create ~capacity_hint:(1 lsl 14) () in
           Sys.opaque_identity (fill_chunked t)));
    Test.make ~name:"tape/push_1M_chunked_hinted"
      (Staged.stage (fun () ->
           let t = Scvad_ad.Tape.create ~capacity_hint:tape_bench_nodes () in
           Sys.opaque_identity (fill_chunked t)));
    Test.make ~name:"tape/backward_1M_seed"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Seed_tape.backward seed_full ~output:seed_out)));
    Test.make ~name:"tape/backward_1M_chunked"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_ad.Tape.backward chunked_full ~output:chunked_out))) ]

(* Ablation: region-codec cost vs mask fragmentation. *)
let bench_regions =
  List.map
    (fun period ->
      let mask = Array.init 46480 (fun i -> i mod period <> period - 1) in
      Test.make
        ~name:(Printf.sprintf "ablation/regions_period_%d" period)
        (Staged.stage (fun () ->
             Sys.opaque_identity (Scvad_checkpoint.Regions.of_mask mask))))
    [ 2; 34; 4096 ]

(* ------------------------------------------------------------------ *)
(* Static pre-filtering: the scvad_activity pass plus the analyzer
   fast path it unlocks.  Wall clock (like the suite group): the
   quantities of interest are the one-shot cost of the static pass and
   the end-to-end reverse-analysis saving — tape nodes and seconds —
   when statically-inactive variables are never lifted. *)
let bench_static_prefilter () =
  say "-- Static pre-filtering (scvad_activity fast path)\n";
  match Scvad_activity.Driver.locate_npb_dir () with
  | None -> say "  (lib/npb sources not found; group skipped)\n"
  | Some dir ->
      let t0 = Unix.gettimeofday () in
      let verdicts, _findings = Scvad_activity.Driver.analyze_dir dir in
      let t_static = Unix.gettimeofday () -. t0 in
      let claims = Scvad_activity.Verdict.total_inactive_claims verdicts in
      record ~group:"static" ~name:"static_pass/lib_npb" ~metric:"s" t_static;
      record ~group:"static" ~name:"static_pass/inactive_elements"
        ~metric:"elements" (float_of_int claims);
      say "  %-40s %10.2f ms  (%d inactive elements proven)\n"
        "static pass (all kernel sources)" (t_static *. 1e3) claims;
      List.iter
        (fun (module A : Scvad_core.App.S) ->
          match Scvad_activity.Verdict.find_app verdicts ~app:A.name with
          | Some av
            when Scvad_activity.Verdict.skippable_float_vars av <> [] ->
              let wall static =
                let t0 = Unix.gettimeofday () in
                let r =
                  Scvad_core.Analyzer.run
                    ~config:
                      { Scvad_core.Analyzer.Config.default with
                        Scvad_core.Analyzer.Config.static }
                    (module A)
                in
                (Unix.gettimeofday () -. t0, r.Crit.tape_nodes)
              in
              let t_full, nodes_full = wall None in
              let t_fast, nodes_fast = wall (Some verdicts) in
              record ~tape_nodes:nodes_full ~group:"static"
                ~name:(A.name ^ "/reverse_analysis/full")
                ~metric:"s" t_full;
              record ~tape_nodes:nodes_fast ~group:"static"
                ~name:(A.name ^ "/reverse_analysis/prefiltered")
                ~metric:"s" t_fast;
              say
                "  %-40s %10.2f ms, %d tape nodes\n"
                (A.name ^ " reverse analysis, full") (t_full *. 1e3)
                nodes_full;
              say
                "  %-40s %10.2f ms, %d tape nodes  (-%d nodes, %.2fx)\n"
                (A.name ^ " reverse analysis, prefiltered") (t_fast *. 1e3)
                nodes_fast (nodes_full - nodes_fast)
                (t_full /. Float.max 1e-9 t_fast)
          | Some _ | None -> ())
        Scvad_npb.Suite.all;
      say "%!"

(* ------------------------------------------------------------------ *)
(* Race certification: wall time of the static pass over lib/, and the
   write-set sanitizer's overhead on a pool fan-out — the two costs a
   user pays for the DESIGN.md §17 certificate. *)
let bench_race () =
  say "-- Race certification (scvad_racefree + write-set sanitizer)\n";
  match Scvad_racefree.Driver.locate_lib_dir () with
  | None -> say "  (lib/ sources not found; group skipped)\n"
  | Some lib ->
      let module Rdriver = Scvad_racefree.Driver in
      let module Sanitize = Scvad_sanitize.Sanitize in
      let t0 = Unix.gettimeofday () in
      let report = Rdriver.certify ~root:lib in
      let t_pass = Unix.gettimeofday () -. t0 in
      let free = Rdriver.count report "race-free" in
      record ~group:"race" ~name:"certify/lib" ~metric:"s" t_pass;
      record ~group:"race" ~name:"certify/race_free_sites" ~metric:"sites"
        (float_of_int free);
      say "  %-40s %10.2f ms  (%d/%d sites race-free)\n"
        "static certification (all lib sources)" (t_pass *. 1e3) free
        (List.length report.Rdriver.r_sites);
      (* Sanitizer overhead: the identical fan-out, plain vs armed and
         sanitized.  Shards record disjoint lanes, so a witness here
         would itself be a bug.  jobs=1 batches degrade to sequential
         unsanitized maps, so measure with at least two workers. *)
      let sjobs = max 2 !jobs in
      Scvad_par.Pool.with_pool ~jobs:sjobs (fun pool ->
          let shards = 64 and per = 4096 in
          let xs = List.init shards (fun i -> i * per) in
          let obj = Sanitize.fresh_id () in
          let work lo =
            let acc = ref 0.0 in
            for k = lo to lo + per - 1 do
              acc := !acc +. float_of_int k
            done;
            Sanitize.record ~obj ~lo ~hi:(lo + per) ~tag:"bench";
            !acc
          in
          let wall sanitize =
            let t0 = Unix.gettimeofday () in
            for _ = 1 to 20 do
              ignore (Scvad_par.Pool.map ~sanitize pool work xs)
            done;
            Unix.gettimeofday () -. t0
          in
          ignore (wall false) (* warm the pool *);
          let t_plain = wall false in
          Sanitize.arm ();
          let t_san = wall true in
          let stats = Sanitize.disarm () in
          record ~jobs:sjobs ~group:"race" ~name:"pool_map/plain" ~metric:"s"
            t_plain;
          record ~jobs:sjobs ~group:"race" ~name:"pool_map/sanitized"
            ~metric:"s" t_san;
          say "  %-40s %10.2f ms\n" "pool map x20, plain" (t_plain *. 1e3);
          say "  %-40s %10.2f ms  (%.2fx, %d spans, %d witnesses)\n"
            "pool map x20, sanitized" (t_san *. 1e3)
            (t_san /. Float.max 1e-9 t_plain)
            stats.Sanitize.spans
            (List.length stats.Sanitize.witnesses));
      say "%!"

(* ------------------------------------------------------------------ *)
(* Checkpoint-set discovery: wall time of the static ranking pass and
   the size of the proposal it emits — the quantities a user weighing
   "trust the declarations" against "discover the set" cares about. *)
let bench_discover () =
  say "-- Checkpoint-set discovery (scvad_discover ranking pass)\n";
  match Scvad_discover.Driver.locate_npb_dir () with
  | None -> say "  (lib/npb sources not found; group skipped)\n"
  | Some dir ->
      let t0 = Unix.gettimeofday () in
      let proposals, _findings = Scvad_discover.Driver.analyze_dir dir in
      let t_pass = Unix.gettimeofday () -. t0 in
      let module Rank = Scvad_discover.Rank in
      record ~group:"discover" ~name:"static_pass/lib_npb" ~metric:"s" t_pass;
      record ~group:"discover" ~name:"static_pass/required_fields"
        ~metric:"fields"
        (float_of_int (Rank.count_verdict proposals Rank.Required));
      record ~group:"discover" ~name:"static_pass/pruned_fields"
        ~metric:"fields"
        (float_of_int
           (Rank.count_verdict proposals Rank.Prunable_recomputable
           + Rank.count_verdict proposals Rank.Prunable_dead));
      say "  %-40s %10.2f ms\n" "discovery pass (all kernel sources)"
        (t_pass *. 1e3);
      List.iter
        (fun (a : Rank.app_ranks) ->
          let proposed = List.length (Rank.discovered_fields a) in
          let pruned = List.length (Rank.pruned_vars a) in
          let added = List.length (Rank.added_fields a) in
          record ~group:"discover"
            ~name:(a.Rank.r_app ^ "/proposed_fields")
            ~metric:"fields" (float_of_int proposed);
          say "  %-40s %10d proposed  (%d pruned, %d added)\n"
            (a.Rank.r_app ^ " proposed checkpoint set")
            proposed pruned added)
        proposals;
      say "%!"

(* ------------------------------------------------------------------ *)
(* Static cost model: wall time of the counting-interpreter prediction,
   its agreement with the dynamic tape, and the planner's own price —
   what it costs to know the tape size before recording a node. *)
let bench_cost () =
  say "-- Static cost model (scvad_cost prediction + planner)\n";
  match Scvad_activity.Driver.locate_npb_dir () with
  | None -> say "  (lib/npb sources not found; group skipped)\n"
  | Some dir ->
      let module World = Scvad_cost.World in
      let module Predict = Scvad_cost.Predict in
      let module Plan = Scvad_cost.Plan in
      let t0 = Unix.gettimeofday () in
      let world = World.load ~npb_dir:dir () in
      let t_load = Unix.gettimeofday () -. t0 in
      record ~group:"cost" ~name:"world_load/lib_npb" ~metric:"s" t_load;
      say "  %-40s %10.2f ms\n" "world load (parse + eval all sources)"
        (t_load *. 1e3);
      List.iter
        (fun name ->
          match World.find_app world name with
          | None -> ()
          | Some app ->
              let t0 = Unix.gettimeofday () in
              let p = Predict.predict world app in
              let t_pred = Unix.gettimeofday () -. t0 in
              record ~tape_nodes:p.Predict.p_total ~group:"cost"
                ~name:(name ^ "/predict") ~metric:"s" t_pred;
              let measured =
                match Scvad_npb.Suite.find name with
                | Some (module A : Scvad_core.App.S) ->
                    (Scvad_core.Analyzer.run (module A)).Crit.tape_nodes
                | None -> -1
              in
              say "  %-40s %10.2f ms, %d nodes predicted (measured %d)\n"
                (name ^ " prediction") (t_pred *. 1e3) p.Predict.p_total
                measured;
              let budget_nodes = Stdlib.max 1 (p.Predict.p_total / 3) in
              let t0 = Unix.gettimeofday () in
              let plan = Plan.of_prediction p ~budget_nodes in
              let t_plan = Unix.gettimeofday () -. t0 in
              record ~budget_nodes
                ~peak_live_nodes:plan.Plan.peak_live_nodes
                ~replays:plan.Plan.replays
                ~replayed_nodes:plan.Plan.replayed_nodes ~group:"cost"
                ~name:(name ^ "/plan") ~metric:"s" t_plan;
              say
                "  %-40s %10.2f ms, %d boundaries, peak %d, %d replays\n"
                (name ^ " plan (budget = dense/3)")
                (t_plan *. 1e3)
                (List.length plan.Plan.boundaries)
                plan.Plan.peak_live_nodes plan.Plan.replays)
        [ "cg-tiny"; "lu"; "sp" ];
      say "%!"

(* ------------------------------------------------------------------ *)
(* Guarded scrutiny: the static certification pass plus the dynamic
   falsifier it schedules.  Wall clock: the quantities of interest are
   the one-shot certification cost, the per-trial falsifier price on
   the cheapest kernel (IS, whose continuation is dominated by the
   verification sweep), and how many mask elements the witnesses
   promote over the plain AD verdict. *)
let bench_guard () =
  say "-- Guarded scrutiny (certificates + perturbation falsifier)\n";
  match Scvad_guard.Driver.locate_npb_dir () with
  | None -> say "  (lib/npb sources not found; group skipped)\n"
  | Some dir ->
      let t0 = Unix.gettimeofday () in
      let certs, _findings = Scvad_guard.Driver.analyze_dir dir in
      let t_certs = Unix.gettimeofday () -. t0 in
      let tainted =
        Scvad_guard.Cert.count_class certs Scvad_guard.Cert.Control_tainted
      in
      record ~group:"guard" ~name:"certify/lib_npb" ~metric:"s" t_certs;
      record ~group:"guard" ~name:"certify/control_tainted_vars"
        ~metric:"vars" (float_of_int tainted);
      say "  %-40s %10.2f ms  (%d control-tainted variables)\n"
        "certification pass (all kernel sources)" (t_certs *. 1e3) tainted;
      let app =
        match Scvad_npb.Suite.find "is" with
        | Some a -> a
        | None -> failwith "no is app"
      in
      let wall guard =
        let t0 = Unix.gettimeofday () in
        let r =
          Scvad_core.Analyzer.run
            ~config:
              { Scvad_core.Analyzer.Config.default with
                Scvad_core.Analyzer.Config.guard }
            app
        in
        (Unix.gettimeofday () -. t0, r)
      in
      let t_plain, plain = wall None in
      let trials = 200 in
      let t_guarded, guarded =
        wall
          (Some
             { Scvad_core.Analyzer.g_certs = certs; g_trials = trials;
               g_seed = 0 })
      in
      let critical (r : Crit.report) =
        List.fold_left
          (fun acc v -> acc + Crit.critical v)
          0 r.Crit.vars
      in
      let promoted = critical guarded - critical plain in
      record ~group:"guard" ~name:"is/analyze/plain" ~metric:"s" t_plain;
      record ~group:"guard"
        ~name:(Printf.sprintf "is/analyze/guarded_%d_trials" trials)
        ~metric:"s" t_guarded;
      record ~group:"guard" ~name:"is/promoted_elements" ~metric:"elements"
        (float_of_int promoted);
      say "  %-40s %10.2f ms\n" "is analyze, plain" (t_plain *. 1e3);
      say "  %-40s %10.2f ms  (%.3f ms/trial, %d elements promoted)\n"
        (Printf.sprintf "is analyze, guarded (%d trials)" trials)
        (t_guarded *. 1e3)
        ((t_guarded -. t_plain) *. 1e3 /. float_of_int trials)
        promoted;
      say "%!"

(* ------------------------------------------------------------------ *)
(* Segmented tape: reverse analysis under a node budget.  Wall clock
   (one analysis is seconds long); the quantities of interest are the
   replay overhead the budget buys and the peak live node count, which
   must stay at or under the budget rounded to whole slabs.  The dense
   report is the cached one from phase 1, so the masks can be compared
   bitwise on the spot. *)
let bench_segmented_tape () =
  say "-- Segmented tape (memory-budgeted reverse analysis)\n";
  List.iter
    (fun name ->
      let (module A : Scvad_core.App.S) = app name in
      let dense = report_of (module A) in
      let budget = max 1 (dense.Crit.tape_nodes / 4) in
      let config =
        Scvad_core.Analyzer.Config.(default |> with_memory_budget budget)
      in
      let t0 = Unix.gettimeofday () in
      let seg = Scvad_core.Analyzer.run ~config (module A) in
      let t_seg = Unix.gettimeofday () -. t0 in
      let masks_equal =
        List.for_all
          (fun (v : Crit.var_report) ->
            (Crit.find seg v.Crit.name).Crit.mask = v.Crit.mask)
          dense.Crit.vars
      in
      match seg.Crit.tape_profile with
      | None -> say "  %-40s (no tape profile?)\n" name
      | Some p ->
          let visited_nodes, active_fraction =
            match seg.Crit.sweep_profile with
            | None -> (None, None)
            | Some w ->
                (Some w.Crit.w_visited_nodes, Some w.Crit.w_active_fraction)
          in
          record ~tape_nodes:seg.Crit.tape_nodes
            ~budget_nodes:p.Crit.t_budget_nodes
            ~peak_live_nodes:p.Crit.t_peak_live_nodes
            ~replays:p.Crit.t_replays ~replayed_nodes:p.Crit.t_replayed_nodes
            ?visited_nodes ?active_fraction ~group:"tape"
            ~name:(name ^ "/reverse_analysis/segmented_quarter_budget")
            ~metric:"s" t_seg;
          say
            "  %-40s %10.2f s, %d nodes, peak live %d (budget %d), %d \
             replays, overhead %.2fx, masks %s\n"
            (name ^ " segmented, budget = nodes/4")
            t_seg seg.Crit.tape_nodes p.Crit.t_peak_live_nodes
            p.Crit.t_budget_nodes p.Crit.t_replays
            (1.
            +. float_of_int p.Crit.t_replayed_nodes
               /. float_of_int (max 1 seg.Crit.tape_nodes))
            (if masks_equal then "bitwise-equal" else "DIVERGED"))
    [ "cg"; "ft" ];
  say "%!"

(* ------------------------------------------------------------------ *)
(* Sparse backward: the frontier sweep against the seed's full dense
   scan on a tape where most adjoints stay exactly zero.  1M nodes, one
   in 64 on the spine that feeds the output, the rest dead fan-out the
   adjoint never reaches.  The dense baseline scans (and re-allocates
   and re-zeroes) all 1M slots every sweep; the frontier sweep word-
   skips the dead runs and clears only what it touched. *)
let bench_sparse_backward () =
  say "-- Sparse backward (frontier sweep vs dense scan, 1/64 active)\n";
  let fill_sparse_seed t =
    let v = Seed_tape.push t (-1) 0. (-1) 0. in
    let last = ref v in
    for i = 2 to tape_bench_nodes do
      if i mod 64 = 0 then last := Seed_tape.push t !last 1. v 1.
      else ignore (Seed_tape.push t v 1. v 1.)
    done;
    !last
  in
  let fill_sparse_chunked t =
    let v = Scvad_ad.Tape.fresh_var t in
    let last = ref v in
    for i = 2 to tape_bench_nodes do
      if i mod 64 = 0 then last := Scvad_ad.Tape.push2 t !last 1. v 1.
      else ignore (Scvad_ad.Tape.push2 t v 1. v 1.)
    done;
    !last
  in
  let seed = Seed_tape.create ~capacity:16 () in
  let seed_out = fill_sparse_seed seed in
  let chunked = Scvad_ad.Tape.create ~capacity_hint:tape_bench_nodes () in
  let chunked_out = fill_sparse_chunked chunked in
  let time_min f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let t_dense =
    time_min (fun () ->
        Sys.opaque_identity (ignore (Seed_tape.backward seed ~output:seed_out)))
  in
  let t_sparse =
    time_min (fun () ->
        Sys.opaque_identity
          (ignore (Scvad_ad.Tape.backward chunked ~output:chunked_out)))
  in
  let st =
    match Scvad_ad.Tape.last_sweep chunked with
    | Some st -> st
    | None -> failwith "sparse backward recorded no sweep stats"
  in
  let visited = st.Scvad_ad.Tape_intf.visited_nodes in
  let swept = st.Scvad_ad.Tape_intf.swept_nodes in
  let active_fraction = float_of_int visited /. float_of_int (max 1 swept) in
  record ~tape_nodes:tape_bench_nodes ~group:"tape"
    ~name:"backward_1M_sparse/dense_scan" ~metric:"s" t_dense;
  record ~tape_nodes:tape_bench_nodes ~visited_nodes:visited ~active_fraction
    ~group:"tape" ~name:"backward_1M_sparse/frontier" ~metric:"s" t_sparse;
  say "  %-40s %10.2f ms  (%d nodes scanned)\n" "dense scan (seed layout)"
    (t_dense *. 1e3) tape_bench_nodes;
  say "  %-40s %10.2f ms  (%d of %d nodes visited, %.3f active, %.2fx)\n"
    "frontier sweep (chunked layout)" (t_sparse *. 1e3) visited swept
    active_fraction
    (t_dense /. Float.max 1e-9 t_sparse);
  say "%!"

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)
(* ------------------------------------------------------------------ *)

let run_group ~quota name tests =
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  say "-- %s\n" name;
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun tname raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              let unit, v =
                if ns > 1e9 then ("s ", ns /. 1e9)
                else if ns > 1e6 then ("ms", ns /. 1e6)
                else if ns > 1e3 then ("us", ns /. 1e3)
                else ("ns", ns)
              in
              record ~group:name ~name:tname ~metric:"ns/run" ns;
              say "  %-40s %10.2f %s/run\n" tname v unit
          | Some _ | None -> say "  %-40s (no estimate)\n" tname)
        results)
    tests;
  say "%!"

(* Suite-level parallelism: wall time of the whole 8-benchmark analysis
   pass, sequential vs on the domain pool.  Wall clock (not Bechamel):
   one analysis pass is seconds long and the quantity of interest is
   end-to-end latency. *)
let bench_suite_parallel () =
  let wall j =
    let t0 = Unix.gettimeofday () in
    let rs =
      Scvad_core.Analyzer.run_suite
        ~config:Scvad_core.Analyzer.Config.(default |> with_jobs j)
        Scvad_npb.Suite.all
    in
    let dt = Unix.gettimeofday () -. t0 in
    let nodes =
      List.fold_left (fun acc (r : Crit.report) -> acc + r.Crit.tape_nodes) 0 rs
    in
    (dt, nodes)
  in
  say "-- Parallel scrutiny (8-benchmark suite wall time)\n";
  let t1, nodes = wall 1 in
  record ~tape_nodes:nodes ~jobs:1 ~group:"suite" ~name:"analyze_suite/jobs=1"
    ~metric:"s" t1;
  say "  %-40s %10.2f s\n" "analyze_suite jobs=1" t1;
  if !jobs > 1 then begin
    let tn, nodes_n = wall !jobs in
    record ~tape_nodes:nodes_n ~jobs:!jobs ~group:"suite"
      ~name:(Printf.sprintf "analyze_suite/jobs=%d" !jobs)
      ~metric:"s" tn;
    say "  %-40s %10.2f s   (%.2fx)\n"
      (Printf.sprintf "analyze_suite jobs=%d" !jobs)
      tn (t1 /. tn);
    let hw = Scvad_par.Pool.hardware_threads () in
    if !jobs > hw then
      say
        "  (note: --jobs %d oversubscribes %d hardware thread%s; expect \
         speedup only when jobs <= hardware threads)\n"
        !jobs hw
        (if hw = 1 then "" else "s")
  end;
  say "%!"

let () =
  say "============================================================\n";
  say " scvad benchmark harness — paper tables, figures, timings\n";
  say "============================================================\n\n";
  phase1 ();
  bench_suite_parallel ();
  bench_static_prefilter ();
  bench_discover ();
  bench_cost ();
  bench_guard ();
  bench_race ();
  bench_segmented_tape ();
  bench_sparse_backward ();
  say "TIMINGS (Bechamel, ns per run via OLS)\n";
  run_group ~quota:0.25 "Table I" [ bench_table1 ];
  run_group ~quota:0.5 "Table II (criticality analysis per benchmark)"
    (List.map bench_table2 [ "bt"; "sp"; "mg"; "cg"; "lu"; "ep"; "is" ]);
  run_group ~quota:0.1 "Table II (FT: taped 64^3 inverse FFT)"
    [ bench_table2 "ft" ];
  run_group ~quota:0.1 "Scaling: class-W analyses (MG 64^3, CG NA=7000, SP 36^3, LU 33^3)"
    [ bench_table2 "mg-w"; bench_table2 "cg-w"; bench_table2 "sp-w";
      bench_table2 "lu-w" ];
  run_group ~quota:0.25 "Table III (checkpoint encoding, full vs pruned)"
    (List.concat_map bench_table3 [ "bt"; "mg"; "cg"; "lu"; "ft" ]);
  run_group ~quota:0.25 "Figures 3-8 (rendering)" bench_figures;
  run_group ~quota:0.5 "Ablation: analysis modes (reduced CG)" bench_modes;
  run_group ~quota:0.5 "Ablation: AD recording overhead (BT step)"
    bench_ad_overhead;
  run_group ~quota:0.5 "Tape layout: seed (doubling) vs chunked slabs"
    bench_tape;
  run_group ~quota:0.25 "Ablation: region codec granularity" bench_regions;
  run_group ~quota:0.5 "Extension: impact + mixed precision (CG)" bench_mixed;
  run_group ~quota:0.25 "Baseline: incremental checkpointing (BT)"
    bench_incremental;
  run_group ~quota:0.25 "Resilience: checkpoint write throughput (BT, pruned)"
    bench_store_writes;
  if !json_out then write_json ();
  say "\ndone.\n"
