(* Benchmark harness.

   Phase 1 regenerates the paper's evaluation artifacts — the rows of
   Table I, Table II and Table III, plus the data series behind the six
   distribution figures — and prints them exactly as reported.

   Phase 2 times the machinery with Bechamel: one Test.make per table
   and per figure, plus the ablations called out in DESIGN.md (analysis
   modes, pruned vs full checkpoint writes, region-codec granularity,
   AD recording overhead).

   Run with: dune exec bench/main.exe                                  *)

open Bechamel
module Crit = Scvad_core.Criticality

let say fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Phase 1: regenerate the paper's rows and series                     *)
(* ------------------------------------------------------------------ *)

let reports = Hashtbl.create 8

let report_of (module A : Scvad_core.App.S) =
  match Hashtbl.find_opt reports A.name with
  | Some r -> r
  | None ->
      let t0 = Unix.gettimeofday () in
      let r = Scvad_core.Analyzer.analyze (module A) in
      Printf.eprintf "[bench] analysis %s: %.2fs (%d tape nodes)\n%!" A.name
        (Unix.gettimeofday () -. t0) r.Crit.tape_nodes;
      Hashtbl.add reports A.name r;
      r

let phase1 () =
  let apps = Scvad_npb.Suite.all in
  say "%s\n" (Scvad_core.Report.table1 apps);
  let rs = List.map (fun a -> report_of a) apps in
  say "%s\n" (Scvad_core.Report.table2 rs);
  let rows =
    List.map
      (fun (module A : Scvad_core.App.S) ->
        Scvad_core.Report.table3_row (module A) (report_of (module A)))
      apps
  in
  say "%s\n" (Scvad_core.Report.table3 rows);
  (* Figure series: the numeric content of Figs. 3-8. *)
  let v name var = Crit.find (report_of (Option.get (Scvad_npb.Suite.find name))) var in
  let bt_u = v "bt" "u" and mg_u = v "mg" "u" and mg_r = v "mg" "r" in
  let cg_x = v "cg" "x" and lu_u = v "lu" "u" and ft_y = v "ft" "y" in
  let cube4 vr m =
    Scvad_viz.Cube.component ~dims4:(Scvad_nd.Shape.dims vr.Crit.shape)
      vr.Crit.mask ~m
  in
  say "FIGURE SERIES\n";
  say "Fig 3 (BT u, component 0): uncritical planes = %s\n"
    (String.concat ", " (Scvad_viz.Cube.uncritical_planes (cube4 bt_u 0)));
  say "Fig 4 (MG u): critical spans = %s\n"
    (Scvad_checkpoint.Regions.to_string mg_u.Crit.regions);
  say "Fig 5 (MG r): %d critical (= 33^3, the restriction read set); \
       pattern period 34: |%s|\n"
    (Crit.critical mg_r)
    (Scvad_viz.Strip.window ~width:68
       (Scvad_viz.Strip.of_report mg_r)
       ~lo:(34 * 34) ~hi:((34 * 34) + (2 * 34)));
  say "Fig 6 (CG x): critical spans = %s\n"
    (Scvad_checkpoint.Regions.to_string cg_x.Crit.regions);
  let u4 = cube4 lu_u 4 in
  let c4, un4 = Scvad_viz.Cube.counts u4 in
  say "Fig 7 (LU u[.][4]): %d critical / %d uncritical (union of sweeps)\n" c4
    un4;
  say "Fig 8 (FT y): uncritical planes = %s (%d cells)\n"
    (String.concat ", "
       (Scvad_viz.Cube.uncritical_planes
          (Scvad_viz.Cube.of_mask ~dims:(Scvad_nd.Shape.dims ft_y.Crit.shape)
             ft_y.Crit.mask)))
    (Crit.uncritical ft_y);
  say "\n";
  (* Operational reading of Table III: Young-model overhead at the
     optimal interval, full vs pruned, for a canonical large system
     (checkpoint cost 60 s at full size, MTBF 24 h, restart 300 s). *)
  let base =
    { Scvad_checkpoint.Interval.checkpoint_cost = 60.; mtbf = 86_400.;
      restart_cost = 300. }
  in
  (* Related-work baseline: per-checkpoint bytes under four policies. *)
  say "CHECKPOINT POLICY COMPARISON (payload bytes: base ckpt, then deltas)\n";
  say "%-10s %12s %12s %14s %12s\n" "Benchmark" "full" "pruned" "incremental"
    "combined";
  List.iter
    (fun name ->
      let (module A : Scvad_core.App.S) =
        Option.get (Scvad_npb.Suite.find name)
      in
      let c =
        Scvad_core.Incremental.storage_comparison ~checkpoints:3 (module A)
          (report_of (module A))
      in
      let second l = List.nth l 1 in
      say "%-10s %12d %12d %14d %12d   (steady-state delta)\n"
        (String.uppercase_ascii name)
        (second c.Scvad_core.Incremental.full)
        (second c.Scvad_core.Incremental.pruned)
        (second c.Scvad_core.Incremental.incremental)
        (second c.Scvad_core.Incremental.combined))
    [ "bt"; "sp"; "mg"; "cg"; "lu" ];
  say "\n";
  say "OPERATIONAL MODEL (Young): C_full=60s, MTBF=24h, R=300s\n";
  say "%-10s %14s %12s %12s %14s\n" "Benchmark" "kept fraction" "tau full"
    "tau pruned" "overhead drop";
  List.iter
    (fun (module A : Scvad_core.App.S) ->
      let row = Scvad_core.Report.table3_row (module A) (report_of (module A)) in
      let kept =
        float_of_int row.Scvad_core.Report.optimized_bytes
        /. float_of_int row.Scvad_core.Report.original_bytes
      in
      let c = Scvad_checkpoint.Interval.compare_pruning base ~kept_fraction:kept in
      say "%-10s %13.1f%% %10.0f s %10.0f s %13.2f%%\n"
        (String.uppercase_ascii A.name)
        (100. *. kept) c.Scvad_checkpoint.Interval.full_tau
        c.Scvad_checkpoint.Interval.pruned_tau
        (100.
         *. (1.
             -. (c.Scvad_checkpoint.Interval.pruned_overhead
                 /. c.Scvad_checkpoint.Interval.full_overhead))))
    apps;
  say "\n%!"

(* ------------------------------------------------------------------ *)
(* Phase 2: Bechamel timings                                           *)
(* ------------------------------------------------------------------ *)

let app name = Option.get (Scvad_npb.Suite.find name)

(* Table I: building the variable registry of all eight benchmarks. *)
let bench_table1 =
  Test.make ~name:"table1/registry"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Scvad_core.Report.table1 Scvad_npb.Suite.all)))

(* Table II: one reverse-gradient analysis per benchmark (FT is the
   heavyweight: a taped 64^3 inverse FFT). *)
let bench_table2 name =
  let (module A : Scvad_core.App.S) = app name in
  Test.make
    ~name:(Printf.sprintf "table2/analyze_%s" name)
    (Staged.stage (fun () ->
         Sys.opaque_identity (Scvad_core.Analyzer.analyze (module A))))

(* Table III: full vs pruned checkpoint encoding. *)
let snapshot_fn name pruned =
  let (module A : Scvad_core.App.S) = app name in
  let report = report_of (module A) in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  fun () ->
    let file =
      Scvad_core.Pruned.snapshot
        ?report:(if pruned then Some report else None)
        ~app:name ~iteration:1 ~float_vars:(I.float_vars st)
        ~int_vars:(I.int_vars st) ()
    in
    Sys.opaque_identity (Scvad_checkpoint.Ckpt_format.encode file)

let bench_table3 name =
  [ Test.make
      ~name:(Printf.sprintf "table3/%s_full" name)
      (Staged.stage (snapshot_fn name false));
    Test.make
      ~name:(Printf.sprintf "table3/%s_pruned" name)
      (Staged.stage (snapshot_fn name true)) ]

(* Figures: rendering cost. *)
let bench_figures =
  let bt = report_of (app "bt") in
  let mg = report_of (app "mg") in
  let cg = report_of (app "cg") in
  let lu = report_of (app "lu") in
  let ft = report_of (app "ft") in
  [ Test.make ~name:"fig3/bt_cube"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig3 (Crit.find bt "u"))));
    Test.make ~name:"fig4/mg_u_strip"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig4 (Crit.find mg "u"))));
    Test.make ~name:"fig5/mg_r_strip"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig5 (Crit.find mg "r"))));
    Test.make ~name:"fig6/cg_x_strip"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig6 (Crit.find cg "x"))));
    Test.make ~name:"fig7/lu_u4_cube"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig7 (Crit.find lu "u"))));
    Test.make ~name:"fig8/ft_y_plane"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_viz.Figures.fig8 (Crit.find ft "y")))) ]

(* Ablation: the three analysis modes on the reduced CG (forward probe
   is O(elements) full runs — the cost the one-sweep reverse mode
   saves). *)
let bench_modes =
  List.map
    (fun (label, mode) ->
      Test.make
        ~name:(Printf.sprintf "ablation/mode_%s_cg_tiny" label)
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Scvad_core.Analyzer.analyze ~mode (module Scvad_npb.Cg.Tiny_app)))))
    [ ("reverse", Crit.Reverse_gradient);
      ("forward", Crit.Forward_probe);
      ("activity", Crit.Activity_dependence) ]

(* Ablation: AD recording overhead — one BT time step in float mode vs
   recording on the reverse tape. *)
let bench_ad_overhead =
  let float_step =
    let module I = Scvad_npb.Bt.Make_generic (Scvad_ad.Float_scalar) in
    let st = I.create () in
    fun () -> Sys.opaque_identity (I.run st ~from:0 ~until:1)
  in
  let taped_step () =
    let tape = Scvad_ad.Tape.create ~capacity:(1 lsl 20) () in
    let module RS = Scvad_ad.Reverse.Scalar_of (struct
      let tape = tape
    end) in
    let module I = Scvad_npb.Bt.Make_generic (RS) in
    let st = I.create () in
    (* lift u so the step actually records *)
    List.iter
      (fun v ->
        ignore
          (Scvad_core.Variable.lift_capture v (Scvad_ad.Reverse.lift tape)))
      (I.float_vars st);
    Sys.opaque_identity (I.run st ~from:0 ~until:1)
  in
  [ Test.make ~name:"ablation/bt_step_float" (Staged.stage float_step);
    Test.make ~name:"ablation/bt_step_reverse_tape" (Staged.stage taped_step) ]

(* Baseline: incremental (dirty-tracking) snapshot cost vs pruned. *)
let bench_incremental =
  let (module A : Scvad_core.App.S) = app "bt" in
  let report = report_of (module A) in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:2;
  let tracker = Scvad_core.Incremental.create_tracker () in
  (* Prime the tracker so the measured call produces a delta. *)
  ignore
    (Scvad_core.Incremental.snapshot tracker
       ~mode:(Scvad_core.Incremental.Combined_with report) ~app:"bt"
       ~iteration:1 ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ());
  [ Test.make ~name:"baseline/incremental_delta_bt"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_core.Incremental.snapshot tracker
                ~mode:(Scvad_core.Incremental.Combined_with report) ~app:"bt"
                ~iteration:2 ~float_vars:(I.float_vars st)
                ~int_vars:(I.int_vars st) ()))) ]

(* Extension: impact analysis + mixed-precision snapshot cost. *)
let bench_mixed =
  let impact =
    Scvad_core.Analyzer.analyze_impact ~at_iter:1 ~niter:2
      (module Scvad_npb.Cg.App)
  in
  let plans = Scvad_core.Mixed.plans_of_report ~threshold:1e-6 impact in
  let module I = Scvad_npb.Cg.App.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  [ Test.make ~name:"extension/impact_analysis_cg"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_core.Analyzer.analyze_impact ~at_iter:1 ~niter:2
                (module Scvad_npb.Cg.App))));
    Test.make ~name:"extension/mixed_snapshot_cg"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Scvad_checkpoint.Ckpt_format.encode
                (Scvad_core.Mixed.snapshot ~plans ~app:"cg" ~iteration:1
                   ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ())))) ]

(* Resilience: end-to-end checkpoint-write throughput, with and without
   the read-back CRC verification that guards the atomic rename. *)
let bench_store_writes =
  let (module A : Scvad_core.App.S) = app "bt" in
  let report = report_of (module A) in
  let module I = A.Make (Scvad_ad.Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:1;
  let file =
    Scvad_core.Pruned.snapshot ~report ~app:"bt" ~iteration:1
      ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let store verify_writes tag =
    Scvad_checkpoint.Store.create ~verify_writes
      ~retention:{ Scvad_checkpoint.Store.keep_last = Some 2; keep_every = None }
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "scvad_bench_store_%s_%d" tag (Unix.getpid ())))
  in
  let verified = store true "v" and unverified = store false "nv" in
  [ Test.make ~name:"resilience/bt_save_verified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_checkpoint.Store.save verified file)));
    Test.make ~name:"resilience/bt_save_unverified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Scvad_checkpoint.Store.save unverified file))) ]

(* Ablation: region-codec cost vs mask fragmentation. *)
let bench_regions =
  List.map
    (fun period ->
      let mask = Array.init 46480 (fun i -> i mod period <> period - 1) in
      Test.make
        ~name:(Printf.sprintf "ablation/regions_period_%d" period)
        (Staged.stage (fun () ->
             Sys.opaque_identity (Scvad_checkpoint.Regions.of_mask mask))))
    [ 2; 34; 4096 ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)
(* ------------------------------------------------------------------ *)

let run_group ~quota name tests =
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  say "-- %s\n" name;
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun tname raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              let unit, v =
                if ns > 1e9 then ("s ", ns /. 1e9)
                else if ns > 1e6 then ("ms", ns /. 1e6)
                else if ns > 1e3 then ("us", ns /. 1e3)
                else ("ns", ns)
              in
              say "  %-40s %10.2f %s/run\n" tname v unit
          | Some _ | None -> say "  %-40s (no estimate)\n" tname)
        results)
    tests;
  say "%!"

let () =
  say "============================================================\n";
  say " scvad benchmark harness — paper tables, figures, timings\n";
  say "============================================================\n\n";
  phase1 ();
  say "TIMINGS (Bechamel, ns per run via OLS)\n";
  run_group ~quota:0.25 "Table I" [ bench_table1 ];
  run_group ~quota:0.5 "Table II (criticality analysis per benchmark)"
    (List.map bench_table2 [ "bt"; "sp"; "mg"; "cg"; "lu"; "ep"; "is" ]);
  run_group ~quota:0.1 "Table II (FT: taped 64^3 inverse FFT)"
    [ bench_table2 "ft" ];
  run_group ~quota:0.1 "Scaling: class-W analyses (MG 64^3, CG NA=7000, SP 36^3, LU 33^3)"
    [ bench_table2 "mg-w"; bench_table2 "cg-w"; bench_table2 "sp-w";
      bench_table2 "lu-w" ];
  run_group ~quota:0.25 "Table III (checkpoint encoding, full vs pruned)"
    (List.concat_map bench_table3 [ "bt"; "mg"; "cg"; "lu"; "ft" ]);
  run_group ~quota:0.25 "Figures 3-8 (rendering)" bench_figures;
  run_group ~quota:0.5 "Ablation: analysis modes (reduced CG)" bench_modes;
  run_group ~quota:0.5 "Ablation: AD recording overhead (BT step)"
    bench_ad_overhead;
  run_group ~quota:0.25 "Ablation: region codec granularity" bench_regions;
  run_group ~quota:0.5 "Extension: impact + mixed precision (CG)" bench_mixed;
  run_group ~quota:0.25 "Baseline: incremental checkpointing (BT)"
    bench_incremental;
  run_group ~quota:0.25 "Resilience: checkpoint write throughput (BT, pruned)"
    bench_store_writes;
  say "\ndone.\n"
