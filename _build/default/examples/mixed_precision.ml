(* mixed_precision: the paper's §VII future work in action.

   "Our work ... potentially benefits to accelerate applications by
   using lower precision for uncritical or even those elements that are
   of very low impact in the future."

   For CG and EP, sweep the impact threshold tau: elements with
   |d output / d element| < tau are checkpointed in single precision,
   elements with zero derivative are dropped, and the rest stay double.
   For each tau we report checkpoint size, the measured restart output
   error, and the first-order prediction sum |g_i| |x_i - fl32(x_i)|.

   Run with: dune exec examples/mixed_precision.exe *)

module Mixed = Scvad_core.Mixed
module Impact = Scvad_core.Impact

let sweep name (module A : Scvad_core.App.S) ~at_iter ~niter thresholds =
  Printf.printf "== %s (checkpoint at t=%d, run to %d)\n" name at_iter niter;
  let imp = Scvad_core.Analyzer.analyze_impact ~at_iter ~niter (module A) in
  List.iter
    (fun (vi : Impact.var_impact) ->
      Printf.printf
        "  impact of %-4s: min nonzero %.2e, median %.2e, max %.2e\n"
        vi.Impact.name (Impact.min_nonzero vi)
        (Impact.percentile vi ~p:50.)
        (Impact.max_magnitude vi))
    imp.Impact.vars;
  Printf.printf
    "  %-10s %8s %8s %8s %10s %12s %12s\n"
    "tau" "f64" "f32" "dropped" "bytes" "measured" "predicted";
  List.iter
    (fun threshold ->
      let e = Mixed.experiment ~at_iter ~niter ~threshold (module A) in
      Printf.printf "  %-10.1e %8d %8d %8d %10d %12.3e %12.3e\n" threshold
        e.Mixed.high_elements e.Mixed.low_elements e.Mixed.dropped_elements
        e.Mixed.mixed_bytes e.Mixed.abs_error e.Mixed.predicted_error)
    thresholds;
  print_newline ()

let () =
  Printf.printf
    "Mixed-precision checkpointing: impact-guided storage/accuracy tradeoff\n\n";
  sweep "CG (inverse power iteration: perturbations contract)"
    (module Scvad_npb.Cg.App) ~at_iter:1 ~niter:6
    [ 0.; 1e-6; 1e-4; 1e-2; infinity ];
  sweep "EP (pure accumulation: perturbations persist)"
    (module Scvad_npb.Ep.App) ~at_iter:2 ~niter:8
    [ 0.; 0.5; infinity ];
  print_endline
    "Reading: tau = 0 keeps everything double (lossless); growing tau\n\
     moves elements to single precision, shrinking the checkpoint while\n\
     the measured restart error stays below the first-order bound."
