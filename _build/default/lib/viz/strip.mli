(** 1-D strip renderings of criticality masks (paper Figs. 4, 5, 6). *)

type t

val of_mask : name:string -> bool array -> t
val of_report : Scvad_core.Criticality.var_report -> t

(** Critical spans, the auxiliary-file view (e.g. ["0-39304"]). *)
val run_length : t -> string

(** Counts, downsampled bar and spans. *)
val to_ascii : ?width:int -> t -> string

(** Bar over a sub-range — for zooming into repetitive patterns;
    raises on bad bounds. *)
val window : ?width:int -> t -> lo:int -> hi:int -> string

(** Per-bucket critical density table. *)
val density : ?buckets:int -> t -> string
