(** The paper's six distribution figures, regenerated from criticality
    reports. *)

type output = {
  title : string;
  text : string;
  images : (string * Ppm.t) list;
}

(** Fig. 3: the shared ADI cube pattern (4-D variable, one component
    cube rendered, default component 0). *)
val fig3 : ?component:int -> Scvad_core.Criticality.var_report -> output

(** Fig. 4: MG u as a strip. *)
val fig4 : Scvad_core.Criticality.var_report -> output

(** Fig. 5: MG r's repetitive pattern (strip + zoomed plane). *)
val fig5 : ?zoom:int * int -> Scvad_core.Criticality.var_report -> output

(** Fig. 6: CG x as a strip. *)
val fig6 : Scvad_core.Criticality.var_report -> output

(** Fig. 7: LU's energy component u[.][.][.][4]. *)
val fig7 : Scvad_core.Criticality.var_report -> output

(** Fig. 8: FT's y and its padding plane. *)
val fig8 : Scvad_core.Criticality.var_report -> output

(** Write a figure's images under [dir]; returns the paths. *)
val write_images : dir:string -> output -> string list
