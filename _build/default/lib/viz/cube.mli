(** Cube renderings of 3-D criticality masks (paper Figs. 3, 7, 8). *)

type view

(** Wrap a rank-3 mask; raises on shape mismatch. *)
val of_mask : dims:int array -> bool array -> view

(** Extract one component cube of a 4-D mask [d0][d1][d2][nc] — how
    BT/LU's u[.][.][.][m] cubes are obtained. *)
val component : dims4:int array -> bool array -> m:int -> view

(** One d1 x d2 slice at the given leading index. *)
val slice : view -> at:int -> bool array

val slices : view -> bool array list

type plane_state = All_critical | All_uncritical | Mixed

val plane_state : view -> axis:int -> at:int -> plane_state

(** Names of the fully uncritical planes, e.g. ["axis1=12"; "axis2=12"]
    for the Fig. 3 pattern. *)
val uncritical_planes : view -> string list

(** Every slice as labelled ASCII. *)
val to_ascii : ?color:bool -> view -> string

(** PPM montage of all slices. *)
val to_ppm : ?scale:int -> view -> Ppm.t

(** (critical, uncritical). *)
val counts : view -> int * int
