(* Binary PPM (P6) image output: the repository's dependency-free way of
   producing the paper's color figures (red = critical, blue =
   uncritical, white = padding/absent). *)

type rgb = int * int * int

let red = (214, 39, 40)
let blue = (31, 119, 180)
let white = (255, 255, 255)
let black = (20, 20, 20)

type t = { width : int; height : int; pixels : Bytes.t }

let create ~width ~height ~fill:(r, g, b) =
  let pixels = Bytes.create (3 * width * height) in
  for i = 0 to (width * height) - 1 do
    Bytes.set pixels (3 * i) (Char.chr r);
    Bytes.set pixels ((3 * i) + 1) (Char.chr g);
    Bytes.set pixels ((3 * i) + 2) (Char.chr b)
  done;
  { width; height; pixels }

let set t ~x ~y ((r, g, b) : rgb) =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Ppm.set: out of bounds";
  let i = 3 * ((y * t.width) + x) in
  Bytes.set t.pixels i (Char.chr r);
  Bytes.set t.pixels (i + 1) (Char.chr g);
  Bytes.set t.pixels (i + 2) (Char.chr b)

(* Fill a [scale] x [scale] block — one logical cell. *)
let set_block t ~x ~y ~scale rgb =
  for dy = 0 to scale - 1 do
    for dx = 0 to scale - 1 do
      set t ~x:((x * scale) + dx) ~y:((y * scale) + dy) rgb
    done
  done

let write path t =
  let oc = open_out_bin path in
  Printf.fprintf oc "P6\n%d %d\n255\n" t.width t.height;
  output_bytes oc t.pixels;
  close_out oc

(* Render a 2-D mask to an image, [scale] pixels per cell. *)
let of_grid ?(scale = 4) ~rows ~cols (mask : bool array) =
  if Array.length mask <> rows * cols then
    invalid_arg "Ppm.of_grid: mask size does not match rows*cols";
  let img = create ~width:(cols * scale) ~height:(rows * scale) ~fill:white in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      set_block img ~x:c ~y:r ~scale
        (if mask.((r * cols) + c) then red else blue)
    done
  done;
  img

(* Montage of 2-D slices laid out horizontally with a 1-cell gutter
   (cube renderings: one slice per plane). *)
let montage ?(scale = 4) ~rows ~cols (slices : bool array list) =
  let n = List.length slices in
  if n = 0 then invalid_arg "Ppm.montage: no slices";
  let width = ((n * (cols + 1)) - 1) * scale in
  let img = create ~width ~height:(rows * scale) ~fill:white in
  List.iteri
    (fun s mask ->
      if Array.length mask <> rows * cols then
        invalid_arg "Ppm.montage: slice size mismatch";
      let x0 = s * (cols + 1) in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          set_block img ~x:(x0 + c) ~y:r ~scale
            (if mask.((r * cols) + c) then red else blue)
        done
      done)
    slices;
  img
