lib/viz/figures.ml: Array Ascii Cube Filename List Ppm Printf Scvad_core Scvad_nd String Strip
