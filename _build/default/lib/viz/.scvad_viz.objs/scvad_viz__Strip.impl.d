lib/viz/strip.ml: Array Ascii Buffer List Printf Scvad_checkpoint Scvad_core String
