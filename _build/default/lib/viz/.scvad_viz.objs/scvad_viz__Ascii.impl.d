lib/viz/ascii.ml: Array Buffer List Printf String
