lib/viz/strip.mli: Scvad_core
