lib/viz/ppm.ml: Array Bytes Char List Printf
