lib/viz/ascii.mli:
