lib/viz/cube.ml: Array Ascii Buffer List Ppm Printf
