lib/viz/figures.mli: Ppm Scvad_core
