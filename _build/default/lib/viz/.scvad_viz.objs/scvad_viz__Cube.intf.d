lib/viz/cube.mli: Ppm
