lib/viz/ppm.mli:
