(** Binary PPM (P6) images: dependency-free color output for the
    paper's figures (red = critical, blue = uncritical). *)

type rgb = int * int * int

val red : rgb
val blue : rgb
val white : rgb
val black : rgb

type t

val create : width:int -> height:int -> fill:rgb -> t
val set : t -> x:int -> y:int -> rgb -> unit

(** Fill one [scale] x [scale] logical cell. *)
val set_block : t -> x:int -> y:int -> scale:int -> rgb -> unit

val write : string -> t -> unit

(** Render a 2-D mask, [scale] pixels per cell. *)
val of_grid : ?scale:int -> rows:int -> cols:int -> bool array -> t

(** Horizontal montage of equally-sized slices with 1-cell gutters. *)
val montage : ?scale:int -> rows:int -> cols:int -> bool array list -> t
