(* Cube renderings of 3-D criticality masks (paper Figs. 3, 7, 8).

   A 3-D mask of shape [d0][d1][d2] is visualized as its d0 slices
   (each a d1 x d2 grid), plus a per-plane summary that names the fully
   uncritical planes — the textual equivalent of "the uncritical
   elements are distributed on the two surfaces of the cube". *)

type view = { dims : int array; mask : bool array }

let of_mask ~dims mask =
  if Array.length dims <> 3 then invalid_arg "Cube.of_mask: need rank 3";
  if Array.length mask <> dims.(0) * dims.(1) * dims.(2) then
    invalid_arg "Cube.of_mask: mask size does not match dims";
  { dims; mask }

(* Extract a 4-D mask's component cube: shape [d0][d1][d2][nc] pinned at
   component m — how BT/LU's u[.][.][.][m] cubes are obtained. *)
let component ~dims4 (mask : bool array) ~m =
  if Array.length dims4 <> 4 then invalid_arg "Cube.component: need rank 4";
  let d0 = dims4.(0) and d1 = dims4.(1) and d2 = dims4.(2) and nc = dims4.(3) in
  if m < 0 || m >= nc then invalid_arg "Cube.component: bad component";
  let cube = Array.make (d0 * d1 * d2) false in
  for k = 0 to d0 - 1 do
    for j = 0 to d1 - 1 do
      for i = 0 to d2 - 1 do
        cube.(((k * d1) + j) * d2 + i) <-
          mask.((((((k * d1) + j) * d2) + i) * nc) + m)
      done
    done
  done;
  of_mask ~dims:[| d0; d1; d2 |] cube

let slice v ~at =
  let d1 = v.dims.(1) and d2 = v.dims.(2) in
  Array.sub v.mask (at * d1 * d2) (d1 * d2)

let slices v = List.init v.dims.(0) (fun at -> slice v ~at)

(* Axis-aligned plane summaries: for each axis and index, is the whole
   plane uncritical / critical / mixed? *)
type plane_state = All_critical | All_uncritical | Mixed

let plane_state v ~axis ~at =
  let d = v.dims in
  let get k j i = v.mask.(((k * d.(1)) + j) * d.(2) + i) in
  let crit = ref 0 and total = ref 0 in
  let visit b =
    incr total;
    if b then incr crit
  in
  (match axis with
  | 0 ->
      for j = 0 to d.(1) - 1 do
        for i = 0 to d.(2) - 1 do
          visit (get at j i)
        done
      done
  | 1 ->
      for k = 0 to d.(0) - 1 do
        for i = 0 to d.(2) - 1 do
          visit (get k at i)
        done
      done
  | 2 ->
      for k = 0 to d.(0) - 1 do
        for j = 0 to d.(1) - 1 do
          visit (get k j at)
        done
      done
  | _ -> invalid_arg "Cube.plane_state: axis must be 0..2");
  if !crit = 0 then All_uncritical
  else if !crit = !total then All_critical
  else Mixed

(* Names of the fully uncritical planes, e.g. ["axis1=12"; "axis2=12"]
   for the Fig. 3 pattern. *)
let uncritical_planes v =
  List.concat
    (List.init 3 (fun axis ->
         List.filter_map
           (fun at ->
             match plane_state v ~axis ~at with
             | All_uncritical -> Some (Printf.sprintf "axis%d=%d" axis at)
             | All_critical | Mixed -> None)
           (List.init v.dims.(axis) (fun i -> i))))

(* ASCII rendering: every d0-slice, labelled. *)
let to_ascii ?(color = false) v =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Ascii.legend ~color);
  List.iteri
    (fun at sl ->
      Buffer.add_string b (Printf.sprintf "slice k=%d:\n" at);
      Buffer.add_string b
        (Ascii.grid ~color ~rows:v.dims.(1) ~cols:v.dims.(2) sl))
    (slices v);
  Buffer.contents b

(* PPM montage of all slices. *)
let to_ppm ?(scale = 6) v =
  Ppm.montage ~scale ~rows:v.dims.(1) ~cols:v.dims.(2) (slices v)

let counts v =
  let crit = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v.mask in
  (crit, Array.length v.mask - crit)
