(* ASCII rendering of criticality masks.

   Convention throughout (matching the paper's color code): critical
   elements are red / '#', uncritical elements are blue / '.'. *)

let critical_char = '#'
let uncritical_char = '.'

(* ANSI-colored cell, if requested. *)
let cell ~color critical =
  if not color then String.make 1 (if critical then critical_char else uncritical_char)
  else if critical then "\x1b[31m#\x1b[0m"
  else "\x1b[34m.\x1b[0m"

let legend ~color =
  Printf.sprintf "legend: %s critical, %s uncritical\n"
    (cell ~color true) (cell ~color false)

(* Render a 2-D mask (row-major, [rows] x [cols]). *)
let grid ?(color = false) ~rows ~cols (mask : bool array) =
  if Array.length mask <> rows * cols then
    invalid_arg "Ascii.grid: mask size does not match rows*cols";
  let b = Buffer.create (rows * (cols + 1)) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Buffer.add_string b (cell ~color mask.((r * cols) + c))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* Downsampled 1-D bar: each output character summarizes a bucket of
   elements — '#' all critical, '.' all uncritical, '+' mixed. *)
let bar ?(width = 80) (mask : bool array) =
  let n = Array.length mask in
  if n = 0 then ""
  else begin
    let width = min width n in
    let b = Buffer.create (width + 1) in
    for c = 0 to width - 1 do
      let lo = c * n / width and hi = ((c + 1) * n / width) - 1 in
      let all_crit = ref true and all_unc = ref true in
      for i = lo to max lo hi do
        if mask.(i) then all_unc := false else all_crit := false
      done;
      Buffer.add_char b
        (if !all_crit then critical_char
         else if !all_unc then uncritical_char
         else '+')
    done;
    Buffer.contents b
  end

(* Histogram of critical elements per coarse bucket, e.g. to expose
   MG r's repetitive pattern numerically. *)
let density ?(buckets = 10) (mask : bool array) =
  let n = Array.length mask in
  List.init buckets (fun c ->
      let lo = c * n / buckets and hi = ((c + 1) * n / buckets) - 1 in
      let crit = ref 0 in
      for i = lo to hi do
        if mask.(i) then incr crit
      done;
      (lo, hi + 1, !crit, hi + 1 - lo))
