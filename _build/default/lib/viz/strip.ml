(* 1-D strip renderings of criticality masks (paper Figs. 4, 5, 6).

   A flat variable is summarized as its run-length encoding (exactly
   the paper's auxiliary-file view), a downsampled bar, and a density
   profile that exposes repetitive patterns such as MG r's. *)

type t = { name : string; mask : bool array }

let of_mask ~name mask = { name; mask }

let of_report (v : Scvad_core.Criticality.var_report) =
  { name = v.Scvad_core.Criticality.name; mask = v.Scvad_core.Criticality.mask }

let run_length t =
  Scvad_checkpoint.Regions.to_string
    (Scvad_checkpoint.Regions.of_mask t.mask)

let to_ascii ?(width = 100) t =
  let total = Array.length t.mask in
  let crit = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.mask in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d elements, %d critical, %d uncritical\n" t.name
       total crit (total - crit));
  Buffer.add_string b (Printf.sprintf "strip: |%s|\n" (Ascii.bar ~width t.mask));
  let spans = run_length t in
  let spans =
    if String.length spans > 200 then String.sub spans 0 200 ^ "..." else spans
  in
  Buffer.add_string b (Printf.sprintf "critical spans: %s\n" spans);
  Buffer.contents b

(* A window of the mask as a bar — to zoom into a repetitive pattern
   (Fig. 5 shows "a repetitive pattern as part of" MG r). *)
let window ?(width = 100) t ~lo ~hi =
  if lo < 0 || hi > Array.length t.mask || lo >= hi then
    invalid_arg "Strip.window: bad bounds";
  Ascii.bar ~width (Array.sub t.mask lo (hi - lo))

(* Density profile: critical count per bucket. *)
let density ?(buckets = 16) t =
  let rows = Ascii.density ~buckets t.mask in
  String.concat ""
    (List.map
       (fun (lo, hi, crit, n) ->
         Printf.sprintf "  [%7d, %7d): %6d/%-6d critical\n" lo hi crit n)
       rows)
