(** ASCII rendering of criticality masks.

    Convention (matching the paper's color code): critical = red / '#',
    uncritical = blue / '.'. *)

val critical_char : char
val uncritical_char : char

(** One cell, optionally ANSI-colored. *)
val cell : color:bool -> bool -> string

val legend : color:bool -> string

(** Render a row-major 2-D mask; raises on size mismatch. *)
val grid : ?color:bool -> rows:int -> cols:int -> bool array -> string

(** Downsampled 1-D bar: '#' all critical, '.' all uncritical, '+'
    mixed per bucket. *)
val bar : ?width:int -> bool array -> string

(** Per-bucket (lo, hi, critical, total) counts. *)
val density : ?buckets:int -> bool array -> (int * int * int * int) list
