(* The paper's six distribution figures, regenerated from criticality
   reports.  Each figure yields terminal text plus optional PPM images
   (named, to be written next to the report). *)

module Crit = Scvad_core.Criticality

type output = { title : string; text : string; images : (string * Ppm.t) list }

let dims (v : Crit.var_report) = Scvad_nd.Shape.dims v.Crit.shape

let counts_line (v : Crit.var_report) =
  Printf.sprintf "%s: %d critical / %d uncritical of %d elements (%.1f%%)\n"
    v.Crit.name (Crit.critical v) (Crit.uncritical v) (Crit.total v)
    (100. *. Crit.uncritical_rate v)

(* Fig. 3: the shared ADI cube pattern — uncritical planes j = 12 and
   i = 12.  [v] is a 4-D [12][13][13][5] variable; all five component
   cubes share the pattern, so component 0 is rendered. *)
let fig3 ?(component = 0) (v : Crit.var_report) =
  let cube = Cube.component ~dims4:(dims v) v.Crit.mask ~m:component in
  let text =
    counts_line v
    ^ Printf.sprintf "fully uncritical planes: %s\n"
        (String.concat ", " (Cube.uncritical_planes cube))
    ^ Cube.to_ascii cube
  in
  {
    title =
      Printf.sprintf "Fig 3. cube pattern of %s (component %d)" v.Crit.name
        component;
    text;
    images = [ (Printf.sprintf "fig3_%s.ppm" v.Crit.name, Cube.to_ppm cube) ];
  }

(* Fig. 4: MG u as a strip — one long critical run then the uncritical
   tail. *)
let fig4 (v : Crit.var_report) =
  let strip = Strip.of_report v in
  {
    title = "Fig 4. critical-uncritical distribution of u in MG";
    text = counts_line v ^ Strip.to_ascii strip;
    images =
      [ (Printf.sprintf "fig4_%s.ppm" v.Crit.name,
         Ppm.of_grid ~scale:2 ~rows:166 ~cols:280
           (Array.init (166 * 280) (fun i ->
                let n = Array.length v.Crit.mask in
                v.Crit.mask.(min (n - 1) (i * n / (166 * 280)))))) ];
  }

(* Fig. 5: MG r's repetitive pattern — the strip plus a zoom into one
   plane of the finest level, where the stride-34 period is visible. *)
let fig5 ?(zoom = (34 * 34, 2 * 34 * 34)) (v : Crit.var_report) =
  let strip = Strip.of_report v in
  let lo, hi = zoom in
  let text =
    counts_line v ^ Strip.to_ascii strip
    ^ Printf.sprintf "zoom [%d, %d): |%s|\n" lo hi (Strip.window strip ~lo ~hi)
    ^ "density profile:\n"
    ^ Strip.density strip
  in
  {
    title = "Fig 5. repetitive pattern of r in MG";
    text;
    images =
      [ (Printf.sprintf "fig5_%s_plane.ppm" v.Crit.name,
         Ppm.of_grid ~scale:6 ~rows:34 ~cols:34 (Array.sub v.Crit.mask lo (34 * 34))) ];
  }

(* Fig. 6: CG x as a strip — first 1400 critical, last 2 uncritical. *)
let fig6 (v : Crit.var_report) =
  let strip = Strip.of_report v in
  {
    title = "Fig 6. critical-uncritical distribution of x in CG";
    text = counts_line v ^ Strip.to_ascii strip;
    images = [];
  }

(* Fig. 7: LU's energy component u[.][.][.][4]. *)
let fig7 (v : Crit.var_report) =
  let cube = Cube.component ~dims4:(dims v) v.Crit.mask ~m:4 in
  let crit, unc = Cube.counts cube in
  let text =
    counts_line v
    ^ Printf.sprintf "component 4 cube: %d critical / %d uncritical\n" crit unc
    ^ Cube.to_ascii cube
  in
  {
    title = "Fig 7. u[x][y][z][4] in LU";
    text;
    images = [ ("fig7_lu_u4.ppm", Cube.to_ppm cube) ];
  }

(* Fig. 8: FT's y — only the padding plane (x = 64) is uncritical.
   The cube is 64x64x65; the text shows the plane summary and one
   y-slice, the image shows a z-slice with the blue padding column. *)
let fig8 (v : Crit.var_report) =
  let cube = Cube.of_mask ~dims:(dims v) v.Crit.mask in
  let sl = Cube.slice cube ~at:0 in
  let text =
    counts_line v
    ^ Printf.sprintf "fully uncritical planes: %s\n"
        (String.concat ", " (Cube.uncritical_planes cube))
    ^ "slice z=0 (rows y, cols x; rightmost column is the padding):\n"
    ^ Ascii.grid ~rows:64 ~cols:65 sl
  in
  {
    title = "Fig 8. critical-uncritical distribution of y in FT";
    text;
    images = [ ("fig8_ft_y_slice.ppm", Ppm.of_grid ~scale:4 ~rows:64 ~cols:65 sl) ];
  }

(* Write a figure's images under [dir]; returns the paths. *)
let write_images ~dir fig =
  List.map
    (fun (name, img) ->
      let path = Filename.concat dir name in
      Ppm.write path img;
      path)
    fig.images
