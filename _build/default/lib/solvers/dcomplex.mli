(** Complex numbers over a generic scalar — NPB FT's [dcomplex],
    generalized so the FFT can run under AD. *)

module Make (S : Scvad_ad.Scalar.S) : sig
  type t

  val make : S.t -> S.t -> t
  val of_floats : float -> float -> t
  val zero : t
  val one : t
  val re : t -> S.t
  val im : t -> S.t
  val conj : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  (** Scale by a real scalar. *)
  val scale : S.t -> t -> t

  (** |z|². *)
  val abs2 : t -> S.t

  val to_floats : t -> float * float
end
