(** Dense 5x5 blocks over a generic scalar — BT's block algebra (NPB
    couples 5 flow variables per grid point). *)

module Make (S : Scvad_ad.Scalar.S) : sig
  (** Row-major [S.t array] of length 25. *)
  type block = S.t array

  (** Length 5. *)
  type vec = S.t array

  val n : int
  val zero : unit -> block
  val identity : unit -> block
  val copy : block -> block
  val get : block -> int -> int -> S.t
  val set : block -> int -> int -> S.t -> unit

  (** Concatenate 5 rows of 5. *)
  val of_rows : S.t array array -> block

  val matvec : block -> vec -> vec
  val matmul : block -> block -> block

  (** [sub_matmul a b c]: a <- a - b*c (the Schur update of the Thomas
      sweep). *)
  val sub_matmul : block -> block -> block -> unit

  (** [sub_matvec r b x]: r <- r - b*x. *)
  val sub_matvec : vec -> block -> vec -> unit

  (** Gauss-Jordan on [a | c | r] without pivoting (NPB binvcrhs): on
      return a = I, c <- a⁻¹c, r <- a⁻¹r. *)
  val gauss_jordan : block -> block -> vec -> unit

  (** Solve a x = r in place ([r] becomes the solution). *)
  val solve : block -> vec -> unit
end
