(* In-place iterative radix-2 complex FFT over a generic scalar.

   Twiddle factors are computed in plain floats and enter the computation
   as AD constants, so differentiating an FFT costs one tape node per
   butterfly arithmetic operation and nothing for the trigonometry —
   mirroring how Enzyme sees FT's precomputed exponent tables. *)

module Make (S : Scvad_ad.Scalar.S) = struct
  module C = Dcomplex.Make (S)

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  (* Bit-reversal permutation of [a.(off .. off+n-1)]. *)
  let bit_reverse (a : C.t array) off n =
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let t = a.(off + i) in
        a.(off + i) <- a.(off + !j);
        a.(off + !j) <- t
      end;
      let m = ref (n lsr 1) in
      while !m >= 1 && !j land !m <> 0 do
        j := !j lxor !m;
        m := !m lsr 1
      done;
      j := !j lor !m
    done

  (* In-place transform of the [n] entries starting at [off].
     [sign] = -1. gives the forward transform (exp(-2πik/n) kernel),
     [sign] = +1. the unnormalized inverse. *)
  let transform ~sign (a : C.t array) ~off ~n =
    if not (is_pow2 n) then invalid_arg "Fft.transform: n must be 2^k";
    bit_reverse a off n;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let step = Float.pi *. sign /. float_of_int half in
      for k = 0 to half - 1 do
        let angle = step *. float_of_int k in
        let w = C.of_floats (Stdlib.cos angle) (Stdlib.sin angle) in
        let i = ref (off + k) in
        while !i < off + n do
          let u = a.(!i) in
          let v = C.mul w a.(!i + half) in
          a.(!i) <- C.add u v;
          a.(!i + half) <- C.sub u v;
          i := !i + !len
        done
      done;
      len := !len * 2
    done

  (* Normalized inverse: divides by n. *)
  let inverse (a : C.t array) ~off ~n =
    transform ~sign:1. a ~off ~n;
    let inv_n = S.of_float (1. /. float_of_int n) in
    for i = off to off + n - 1 do
      a.(i) <- C.scale inv_n a.(i)
    done

  let forward (a : C.t array) ~off ~n = transform ~sign:(-1.) a ~off ~n
end
