(* Complex numbers over a generic scalar: NPB FT's [dcomplex] with [real]
   and [imag] double attributes, generalized so the FFT can run under
   AD.  The two components are independent scalars, which is exactly how
   the paper counts FT's elements (each dcomplex cell = one element of
   the checkpoint variable [y], its criticality judged through both
   components). *)

module Make (S : Scvad_ad.Scalar.S) = struct
  type t = { re : S.t; im : S.t }

  let make re im = { re; im }
  let of_floats re im = { re = S.of_float re; im = S.of_float im }
  let zero = { re = S.zero; im = S.zero }
  let one = { re = S.one; im = S.zero }
  let re t = t.re
  let im t = t.im
  let conj t = { t with im = S.(~-.(t.im)) }
  let add a b = { re = S.(a.re +. b.re); im = S.(a.im +. b.im) }
  let sub a b = { re = S.(a.re -. b.re); im = S.(a.im -. b.im) }

  let mul a b =
    {
      re = S.((a.re *. b.re) -. (a.im *. b.im));
      im = S.((a.re *. b.im) +. (a.im *. b.re));
    }

  (* Scale by a real scalar. *)
  let scale k t = { re = S.(k *. t.re); im = S.(k *. t.im) }

  let abs2 t = S.((t.re *. t.re) +. (t.im *. t.im))

  let to_floats t = (S.to_float t.re, S.to_float t.im)
end
