(* Block-tridiagonal Thomas solver over 5x5 blocks: the per-line solver
   of BT's alternating-direction implicit sweeps.

   System, for i = 0..n-1 (with a.(0) and c.(n-1) ignored):

     a_i x_{i-1} + b_i x_i + c_i x_{i+1} = r_i                        *)

module Make (S : Scvad_ad.Scalar.S) = struct
  module B = Block5.Make (S)

  (* Solves in place: [b], [c] and [r] are destroyed; on return [r]
     holds the solution vectors. *)
  let solve ~(a : B.block array) ~(b : B.block array) ~(c : B.block array)
      ~(r : B.vec array) =
    let n = Array.length b in
    if Array.length a <> n || Array.length c <> n || Array.length r <> n
    then invalid_arg "Btridiag.solve: band length mismatch";
    (* Forward elimination: row 0 then Schur updates. *)
    B.gauss_jordan b.(0) c.(0) r.(0);
    for i = 1 to n - 1 do
      (* b_i <- b_i - a_i c'_{i-1};  r_i <- r_i - a_i r'_{i-1} *)
      B.sub_matmul b.(i) a.(i) c.(i - 1);
      B.sub_matvec r.(i) a.(i) r.(i - 1);
      B.gauss_jordan b.(i) c.(i) r.(i)
    done;
    (* Back substitution: x_i = r'_i - c'_i x_{i+1}. *)
    for i = n - 2 downto 0 do
      B.sub_matvec r.(i) c.(i) r.(i + 1)
    done
end
