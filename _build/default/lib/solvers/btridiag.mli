(** Block-tridiagonal Thomas solver over 5x5 blocks — BT's per-line
    implicit solver. *)

module Make (S : Scvad_ad.Scalar.S) : sig
  module B : module type of Block5.Make (S)

  (** Solve, for i = 0..n-1 (with [a.(0)] and [c.(n-1)] ignored):
      a{_i} x{_i-1} + b{_i} x{_i} + c{_i} x{_i+1} = r{_i}.
      In place: [b], [c] and [r] are destroyed; on return [r] holds the
      solution vectors.  Raises on band length mismatch. *)
  val solve :
    a:B.block array -> b:B.block array -> c:B.block array -> r:B.vec array -> unit
end
