(* Scalar pentadiagonal solver: the per-line solver of SP's sweeps (NPB's
   "scalar penta-diagonal" benchmark factors each line into scalar
   systems instead of BT's 5x5 blocks).

   System, for i = 0..n-1 (out-of-range bands ignored):

     e_i x_{i-2} + a_i x_{i-1} + d_i x_i + c_i x_{i+1} + f_i x_{i+2} = r_i *)

module Make (S : Scvad_ad.Scalar.S) = struct
  (* Solve in place by Gaussian elimination without pivoting (the systems
     SP builds are diagonally dominant); all six arrays are destroyed and
     [r] holds the solution on return. *)
  let solve ~(e : S.t array) ~(a : S.t array) ~(d : S.t array)
      ~(c : S.t array) ~(f : S.t array) ~(r : S.t array) =
    let n = Array.length d in
    if
      Array.length e <> n || Array.length a <> n || Array.length c <> n
      || Array.length f <> n || Array.length r <> n
    then invalid_arg "Pentadiag.solve: band length mismatch";
    if n = 1 then r.(0) <- S.(r.(0) /. d.(0))
    else begin
      (* Forward elimination of the two sub-diagonals. *)
      for i = 0 to n - 2 do
        (* Normalize row i. *)
        let inv = S.(one /. d.(i)) in
        c.(i) <- S.(c.(i) *. inv);
        f.(i) <- S.(f.(i) *. inv);
        r.(i) <- S.(r.(i) *. inv);
        (* Eliminate a.(i+1). *)
        let m1 = a.(i + 1) in
        d.(i + 1) <- S.(d.(i + 1) -. (m1 *. c.(i)));
        c.(i + 1) <- S.(c.(i + 1) -. (m1 *. f.(i)));
        r.(i + 1) <- S.(r.(i + 1) -. (m1 *. r.(i)));
        (* Eliminate e.(i+2). *)
        if i + 2 < n then begin
          let m2 = e.(i + 2) in
          a.(i + 2) <- S.(a.(i + 2) -. (m2 *. c.(i)));
          d.(i + 2) <- S.(d.(i + 2) -. (m2 *. f.(i)));
          r.(i + 2) <- S.(r.(i + 2) -. (m2 *. r.(i)))
        end
      done;
      r.(n - 1) <- S.(r.(n - 1) /. d.(n - 1));
      (* Back substitution through the two super-diagonals. *)
      r.(n - 2) <- S.(r.(n - 2) -. (c.(n - 2) *. r.(n - 1)));
      for i = n - 3 downto 0 do
        r.(i) <- S.(r.(i) -. (c.(i) *. r.(i + 1)) -. (f.(i) *. r.(i + 2)))
      done
    end
end
