(** In-place iterative radix-2 complex FFT over a generic scalar.

    Twiddle factors are plain-float constants, so differentiating an
    FFT costs one tape node per butterfly operation and nothing for the
    trigonometry. *)

module Make (S : Scvad_ad.Scalar.S) : sig
  module C : module type of Dcomplex.Make (S)

  val is_pow2 : int -> bool

  (** In-place transform of the [n] entries at [off].  [sign = -1.] is
      the forward kernel exp(-2πik/n), [sign = +1.] the unnormalized
      inverse.  Raises unless [n] is a power of two. *)
  val transform : sign:float -> C.t array -> off:int -> n:int -> unit

  val forward : C.t array -> off:int -> n:int -> unit

  (** Normalized inverse (divides by [n]). *)
  val inverse : C.t array -> off:int -> n:int -> unit
end
