lib/solvers/btridiag.ml: Array Block5 Scvad_ad
