lib/solvers/dcomplex.mli: Scvad_ad
