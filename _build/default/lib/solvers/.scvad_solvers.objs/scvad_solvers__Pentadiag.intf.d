lib/solvers/pentadiag.mli: Scvad_ad
