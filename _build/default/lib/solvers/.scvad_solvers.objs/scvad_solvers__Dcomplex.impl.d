lib/solvers/dcomplex.ml: Scvad_ad
