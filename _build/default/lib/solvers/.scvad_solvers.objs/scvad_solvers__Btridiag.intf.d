lib/solvers/btridiag.mli: Block5 Scvad_ad
