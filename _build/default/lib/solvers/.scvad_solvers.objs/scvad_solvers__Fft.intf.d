lib/solvers/fft.mli: Dcomplex Scvad_ad
