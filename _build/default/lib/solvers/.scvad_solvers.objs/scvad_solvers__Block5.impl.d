lib/solvers/block5.ml: Array Scvad_ad
