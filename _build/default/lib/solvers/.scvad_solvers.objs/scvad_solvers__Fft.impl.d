lib/solvers/fft.ml: Array Dcomplex Float Scvad_ad Stdlib
