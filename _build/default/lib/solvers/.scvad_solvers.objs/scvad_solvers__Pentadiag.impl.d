lib/solvers/pentadiag.ml: Array Scvad_ad
