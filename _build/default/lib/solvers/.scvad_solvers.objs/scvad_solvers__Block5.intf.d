lib/solvers/block5.mli: Scvad_ad
