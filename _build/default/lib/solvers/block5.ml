(* Dense 5x5 blocks over a generic scalar: the building block of BT's
   block-tridiagonal solver (NPB solves 5 coupled flow variables per grid
   point, hence the 5). *)

module Make (S : Scvad_ad.Scalar.S) = struct
  (* A block is a row-major [S.t array] of length 25; a vector has
     length 5. *)
  type block = S.t array
  type vec = S.t array

  let n = 5

  let zero () : block = Array.make (n * n) S.zero

  let identity () : block =
    let m = zero () in
    for i = 0 to n - 1 do
      m.((i * n) + i) <- S.one
    done;
    m

  let copy (m : block) : block = Array.copy m
  let get (m : block) i j = m.((i * n) + j)
  let set (m : block) i j x = m.((i * n) + j) <- x

  let of_rows rows : block =
    if Array.length rows <> n then invalid_arg "Block5.of_rows";
    Array.concat (Array.to_list rows)

  (* y <- m * x *)
  let matvec (m : block) (x : vec) : vec =
    Array.init n (fun i ->
        let acc = ref S.zero in
        for j = 0 to n - 1 do
          acc := S.(!acc +. (m.((i * n) + j) *. x.(j)))
        done;
        !acc)

  (* c <- a * b *)
  let matmul (a : block) (b : block) : block =
    let c = zero () in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let acc = ref S.zero in
        for k = 0 to n - 1 do
          acc := S.(!acc +. (a.((i * n) + k) *. b.((k * n) + j)))
        done;
        c.((i * n) + j) <- !acc
      done
    done;
    c

  (* a <- a - b * c  (the Schur-complement update of the Thomas sweep) *)
  let sub_matmul (a : block) (b : block) (c : block) =
    let bc = matmul b c in
    for i = 0 to (n * n) - 1 do
      a.(i) <- S.(a.(i) -. bc.(i))
    done

  (* r <- r - b * x *)
  let sub_matvec (r : vec) (b : block) (x : vec) =
    let bx = matvec b x in
    for i = 0 to n - 1 do
      r.(i) <- S.(r.(i) -. bx.(i))
    done

  (* Gauss-Jordan on [a | c | r]: on return a = I, c <- a^-1 c,
     r <- a^-1 r.  No pivoting, as in NPB's binvcrhs (blocks are strongly
     diagonally dominant there and in our kernels). *)
  let gauss_jordan (a : block) (c : block) (r : vec) =
    for p = 0 to n - 1 do
      let pivot = S.(one /. a.((p * n) + p)) in
      for j = 0 to n - 1 do
        a.((p * n) + j) <- S.(a.((p * n) + j) *. pivot);
        c.((p * n) + j) <- S.(c.((p * n) + j) *. pivot)
      done;
      r.(p) <- S.(r.(p) *. pivot);
      for i = 0 to n - 1 do
        if i <> p then begin
          let coeff = a.((i * n) + p) in
          for j = 0 to n - 1 do
            a.((i * n) + j) <-
              S.(a.((i * n) + j) -. (coeff *. a.((p * n) + j)));
            c.((i * n) + j) <-
              S.(c.((i * n) + j) -. (coeff *. c.((p * n) + j)))
          done;
          r.(i) <- S.(r.(i) -. (coeff *. r.(p)))
        end
      done
    done

  (* Solve a x = r in place (r becomes the solution). *)
  let solve (a : block) (r : vec) =
    let c = zero () in
    gauss_jordan (copy a) c r
end
