(** Scalar pentadiagonal solver — SP's per-line implicit solver. *)

module Make (S : Scvad_ad.Scalar.S) : sig
  (** Solve, for i = 0..n-1 (out-of-range bands ignored):
      e{_i} x{_i-2} + a{_i} x{_i-1} + d{_i} x{_i} + c{_i} x{_i+1}
      + f{_i} x{_i+2} = r{_i}.
      Gaussian elimination without pivoting (the systems SP builds are
      diagonally dominant); all six arrays are destroyed and [r] holds
      the solution on return.  Raises on band length mismatch. *)
  val solve :
    e:S.t array ->
    a:S.t array ->
    d:S.t array ->
    c:S.t array ->
    f:S.t array ->
    r:S.t array ->
    unit
end
