(* NPB pseudo-random number generator.

   Faithful port of NPB's [randlc]/[vranlc]/[ipow46]: the linear
   congruence x_{k+1} = a * x_k mod 2^46 evaluated in double precision by
   splitting operands into 23-bit halves (every intermediate stays below
   2^52, so the arithmetic is exact).  CG's matrix generator and EP's
   Gaussian-deviate stream both sit on this generator, exactly as in the
   benchmarks the paper evaluates. *)

let r23 = 0.5 ** 23.
let r46 = r23 *. r23
let t23 = 2. ** 23.
let t46 = t23 *. t23

(* NPB's canonical multiplier 5^13 and the EP/CG default seeds. *)
let default_mult = 1220703125.
let ep_seed = 271828183.
let cg_seed = 314159265.

type t = { mutable seed : float }

let create seed = { seed }
let seed t = t.seed

(* Core step: returns a uniform deviate in (0, 1) and advances the
   seed. *)
let randlc t ~a =
  let t1 = r23 *. a in
  let a1 = Float.of_int (int_of_float t1) in
  let a2 = a -. (t23 *. a1) in
  let t1 = r23 *. t.seed in
  let x1 = Float.of_int (int_of_float t1) in
  let x2 = t.seed -. (t23 *. x1) in
  let t1 = (a1 *. x2) +. (a2 *. x1) in
  let t2 = Float.of_int (int_of_float (r23 *. t1)) in
  let z = t1 -. (t23 *. t2) in
  let t3 = (t23 *. z) +. (a2 *. x2) in
  let t4 = Float.of_int (int_of_float (r46 *. t3)) in
  t.seed <- t3 -. (t46 *. t4);
  r46 *. t.seed

let next t = randlc t ~a:default_mult

(* Fill [n] uniform deviates starting at [dst.(off)]. *)
let vranlc t ~a n (dst : float array) off =
  for i = off to off + n - 1 do
    dst.(i) <- randlc t ~a
  done

(* Seed exponentiation: a^exponent in the multiplicative group mod 2^46,
   by square-and-multiply expressed through randlc (NPB's ipow46).  Used
   to jump ahead in the stream. *)
let ipow46 a exponent =
  if exponent = 0 then 1.
  else begin
    let q = create a in
    let r = create 1. in
    let n = ref exponent in
    while !n > 1 do
      let n2 = !n / 2 in
      if n2 * 2 = !n then begin
        ignore (randlc q ~a:q.seed);
        n := n2
      end
      else begin
        ignore (randlc r ~a:q.seed);
        n := !n - 1
      end
    done;
    ignore (randlc r ~a:q.seed);
    r.seed
  end
