lib/nprand/nprand.mli:
