lib/nprand/nprand.ml: Array Float
