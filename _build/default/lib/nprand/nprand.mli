(** NPB pseudo-random number generator ([randlc] family).

    The multiplicative linear congruence x ← a·x mod 2{^46}, evaluated
    exactly in double precision via 23-bit splitting — a faithful port of
    the generator all NPB benchmarks share.  Deterministic across runs,
    which matters for checkpoint/restart testing: a restarted run must
    regenerate the identical stream. *)

type t

(** NPB's canonical multiplier, 5{^13} = 1220703125. *)
val default_mult : float

(** EP's default seed (271828183). *)
val ep_seed : float

(** CG's default seed (314159265). *)
val cg_seed : float

val create : float -> t

(** Current seed (a float holding an exact 46-bit integer). *)
val seed : t -> float

(** One step with multiplier [a]; returns a uniform deviate in (0,1). *)
val randlc : t -> a:float -> float

(** One step with {!default_mult}. *)
val next : t -> float

(** [vranlc t ~a n dst off] fills [dst.(off .. off+n-1)] with deviates. *)
val vranlc : t -> a:float -> int -> float array -> int -> unit

(** [ipow46 a e] = the seed reached from 1 after multiplying [e] times by
    [a] (i.e. a{^e} mod 2{^46}); NPB's stream jump-ahead. *)
val ipow46 : float -> int -> float
