(* Row-major dense shapes: the dimension/stride algebra shared by the
   checkpoint variable registry, the visualizer's slicers and the
   kernels' flat arrays. *)

type t = { dims : int array; strides : int array; size : int }

let create dims =
  if List.exists (fun d -> d <= 0) dims then
    invalid_arg "Shape.create: dimensions must be positive";
  let dims = Array.of_list dims in
  let rank = Array.length dims in
  let strides = Array.make rank 1 in
  for i = rank - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  let size = Array.fold_left ( * ) 1 dims in
  { dims; strides; size }

let scalar = create [ 1 ]
let dims t = Array.copy t.dims
let rank t = Array.length t.dims
let dim t i = t.dims.(i)
let size t = t.size
let stride t i = t.strides.(i)

let equal a b = a.dims = b.dims

let offset t idx =
  let rank = Array.length t.dims in
  if Array.length idx <> rank then
    invalid_arg "Shape.offset: rank mismatch";
  let off = ref 0 in
  for i = 0 to rank - 1 do
    let x = idx.(i) in
    if x < 0 || x >= t.dims.(i) then invalid_arg "Shape.offset: out of bounds";
    off := !off + (x * t.strides.(i))
  done;
  !off

(* Inverse of [offset]. *)
let index_of_offset t off =
  if off < 0 || off >= t.size then
    invalid_arg "Shape.index_of_offset: out of bounds";
  Array.mapi (fun i _ -> off / t.strides.(i) mod t.dims.(i)) t.dims

(* Iterate all multi-indices in row-major order.  The callback receives a
   buffer that is reused between calls. *)
let iter t f =
  let rank = Array.length t.dims in
  let idx = Array.make rank 0 in
  let rec bump i =
    if i >= 0 then begin
      idx.(i) <- idx.(i) + 1;
      if idx.(i) = t.dims.(i) then begin
        idx.(i) <- 0;
        bump (i - 1)
      end
    end
  in
  for _ = 1 to t.size do
    f idx;
    bump (rank - 1)
  done

let to_string t =
  Printf.sprintf "[%s]"
    (String.concat "x" (Array.to_list (Array.map string_of_int t.dims)))
