(** Dense n-dimensional arrays over any element type.

    A thin, safe wrapper over a flat array plus a {!Shape}; the flat view
    ({!data}) is what the kernels, the analyzer and the checkpoint writer
    operate on. *)

type 'a t

val create : Shape.t -> 'a -> 'a t
val init : Shape.t -> (int array -> 'a) -> 'a t

(** View an existing flat array; length must match the shape. *)
val of_array : Shape.t -> 'a array -> 'a t

val shape : 'a t -> Shape.t

(** The underlying flat storage (shared, not copied). *)
val data : 'a t -> 'a array

val size : 'a t -> int
val get : 'a t -> int array -> 'a
val set : 'a t -> int array -> 'a -> unit
val get_flat : 'a t -> int -> 'a
val set_flat : 'a t -> int -> 'a -> unit
val fill : 'a t -> 'a -> unit
val map : ('a -> 'b) -> 'a t -> 'b t
val copy : 'a t -> 'a t

(** Iterate with multi-indices (buffer reused between calls). *)
val iteri : (int array -> 'a -> unit) -> 'a t -> unit

(** [slice3 t ~axis ~at] pins one axis of a 3-D array, yielding the 2-D
    slice — the visualizer's building block for cube renderings. *)
val slice3 : 'a t -> axis:int -> at:int -> 'a t
