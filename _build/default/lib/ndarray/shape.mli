(** Row-major dense shapes and stride algebra.

    A shape maps multi-indices to flat offsets in a contiguous array, the
    layout used by every checkpoint variable in the repository (the paper
    scrutinizes variables as flat element sequences, cf. its auxiliary
    file of contiguous regions). *)

type t

(** [create dims] builds a row-major shape; dimensions must be positive. *)
val create : int list -> t

(** The shape of a lone scalar, viewed as a 1-element vector. *)
val scalar : t

val dims : t -> int array
val rank : t -> int
val dim : t -> int -> int

(** Total number of elements. *)
val size : t -> int

val stride : t -> int -> int
val equal : t -> t -> bool

(** Flat offset of a multi-index (bounds-checked). *)
val offset : t -> int array -> int

(** Inverse of {!offset}. *)
val index_of_offset : t -> int -> int array

(** Iterate all multi-indices in row-major (offset) order.  The index
    buffer passed to the callback is reused; copy it if retained. *)
val iter : t -> (int array -> unit) -> unit

(** E.g. ["[12x13x13x5]"]. *)
val to_string : t -> string
