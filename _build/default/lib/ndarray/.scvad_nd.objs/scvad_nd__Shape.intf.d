lib/ndarray/shape.mli:
