lib/ndarray/shape.ml: Array List Printf String
