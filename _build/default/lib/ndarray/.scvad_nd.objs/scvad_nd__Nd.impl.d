lib/ndarray/nd.ml: Array List Shape
