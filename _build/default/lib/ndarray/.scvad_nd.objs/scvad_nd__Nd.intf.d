lib/ndarray/nd.mli: Shape
