(** IS — Integer bucket Sort (NPB kernel, class S: 2^16 keys, 2^11 key
    range, 512 buckets, 10 iterations).

    All-integer benchmark: criticality comes from the integer
    dependence tracer ({!Scvad_ad.Itaint}) over the union of three
    checkpoint boundaries.  Checkpoint variables (Table I):
    int passed_verification, int key_array[65536],
    int bucket_ptrs[512], int iteration — all critical. *)

val total_keys : int
val max_key : int
val num_buckets : int
val iterations : int

(** Integer operations abstracted so the same kernel runs plain (ints)
    or traced ({!Scvad_ad.Itaint}). *)
module type INT_OPS = sig
  type t

  val const : int -> t
  val value : t -> int
  val add : t -> t -> t
  val sub : t -> t -> t
  val shift_right : t -> int -> t
  val le : t -> t -> t
  val eq : t -> t -> t
  val get : t array -> t -> t
  val set : t array -> t -> t -> unit
end

module Plain_ops : INT_OPS with type t = int

(** The bucket-sort kernel over abstract integers. *)
module Kernel (O : INT_OPS) : sig
  type state

  val create : unit -> state
  val rank : state -> iteration:int -> unit
  val full_verify : state -> unit
  val run : state -> from:int -> until:int -> unit
  val output : state -> O.t
end

(** Criticality masks by dependence tracing (union over boundaries
    0, 9, 10). *)
val taint_masks : unit -> (string * bool array) list

module App : Scvad_core.App.S
