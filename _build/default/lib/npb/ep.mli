(** EP — Embarrassingly Parallel Gaussian deviates (NPB kernel,
    class S: 2^24 pairs in 256 batches).

    Checkpoint variables (Table I): double sx, double sy, double q[10],
    int k — all critical (read-modify-write accumulators).  Batches
    jump into the randlc stream with ipow46, so restarts regenerate the
    identical deviates. *)

(** Batches (the main loop). *)
val nn : int

module Make_generic (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

module App : Scvad_core.App.S
