(** FT — 3-D FFT PDE solver (NPB kernel, class S: 64^3 grid,
    6 iterations).

    Checkpoint variables (Table I): dcomplex y[64][64][65] (the x
    dimension padded by one — the 4096 uncritical cells of Fig. 8),
    dcomplex sums[6] (accumulated checksums: read-modify-write, hence
    critical at every boundary), int kt. *)

val n1 : int
val n2 : int
val n3 : int

(** 266240 stored dcomplex cells. *)
val cells : int

val niter : int

module Make_generic (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

module App : Scvad_core.App.S
