(** SP — Scalar Penta-diagonal solver (NPB kernel, class S).

    BT's sibling: same grid, same sweep structure, scalar pentadiagonal
    line solves.  Checkpoint variables: double u[12][13][13][5],
    int step; same Fig. 3 pattern as BT (1500 uncritical). *)

module Make_generic (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

module App : Scvad_core.App.S

(** Grid-parameterized kernel (class S and W). *)
module Make_sized (_ : Adi_common.GRID) (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

(** Class W (36^3): the scaling study. *)
module App_w : Scvad_core.App.S
