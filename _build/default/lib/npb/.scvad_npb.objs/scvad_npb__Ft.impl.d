lib/npb/ft.ml: Array Float Scvad_ad Scvad_core Scvad_nd Scvad_nprand Scvad_solvers
