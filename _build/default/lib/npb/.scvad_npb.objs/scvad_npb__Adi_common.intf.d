lib/npb/adi_common.mli: Lazy Scvad_ad Scvad_nd
