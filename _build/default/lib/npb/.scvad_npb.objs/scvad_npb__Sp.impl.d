lib/npb/sp.ml: Adi_common Array Lazy Scvad_ad Scvad_core Scvad_nd Scvad_solvers
