lib/npb/mg.mli: Scvad_ad Scvad_core
