lib/npb/cg.mli: Scvad_ad Scvad_core
