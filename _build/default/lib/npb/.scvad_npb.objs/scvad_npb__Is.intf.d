lib/npb/is.mli: Scvad_core
