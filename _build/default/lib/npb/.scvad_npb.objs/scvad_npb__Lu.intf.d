lib/npb/lu.mli: Adi_common Scvad_ad Scvad_core
