lib/npb/cg.ml: Array Hashtbl Scvad_ad Scvad_core Scvad_nd Scvad_nprand
