lib/npb/mg.ml: Array Scvad_ad Scvad_core Scvad_nd Scvad_nprand
