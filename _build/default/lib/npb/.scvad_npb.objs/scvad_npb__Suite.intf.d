lib/npb/suite.mli: Scvad_core
