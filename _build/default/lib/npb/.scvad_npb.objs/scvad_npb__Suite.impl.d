lib/npb/suite.ml: Bt Cg Ep Ft Is List Lu Mg Scvad_core Sp
