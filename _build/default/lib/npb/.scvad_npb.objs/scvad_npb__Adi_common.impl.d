lib/npb/adi_common.ml: Array Scvad_ad Scvad_nd Stdlib
