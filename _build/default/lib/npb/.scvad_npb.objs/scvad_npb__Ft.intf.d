lib/npb/ft.mli: Scvad_ad Scvad_core
