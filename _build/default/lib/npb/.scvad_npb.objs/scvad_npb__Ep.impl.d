lib/npb/ep.ml: Array Float Scvad_ad Scvad_core Scvad_nd Scvad_nprand
