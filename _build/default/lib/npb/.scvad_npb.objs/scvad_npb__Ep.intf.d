lib/npb/ep.mli: Scvad_ad Scvad_core
