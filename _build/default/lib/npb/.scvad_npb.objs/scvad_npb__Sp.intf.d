lib/npb/sp.mli: Adi_common Scvad_ad Scvad_core
