lib/npb/bt.mli: Adi_common Scvad_ad Scvad_core
