lib/npb/is.ml: Array Itaint List Scvad_ad Scvad_core Scvad_nd Scvad_nprand
