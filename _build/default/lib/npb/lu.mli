(** LU — Lower-Upper symmetric Gauss-Seidel solver (NPB kernel,
    class S).

    Checkpoint variables (Table I): u[12][13][13][5],
    rho_i[12][13][13], qs[12][13][13], rsd[12][13][13][5], int istep.
    Criticality: components 0-3 of u and rsd follow Fig. 3; the energy
    component u[.][4] follows Fig. 7 (union of the three directional
    sweep ranges: 1600 critical / 428 uncritical); rho_i and qs have
    300 uncritical each. *)

module Make_generic (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

module App : Scvad_core.App.S

(** Grid-parameterized kernel (class S and W). *)
module Make_sized (_ : Adi_common.GRID) (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

(** Class W (33^3): the scaling study. *)
module App_w : Scvad_core.App.S
