(** BT — Block Tri-diagonal solver (NPB kernel, class S).

    ADI time stepping with 5x5 block-tridiagonal line solves.
    Checkpoint variables (paper Table I): double u[12][13][13][5],
    int step.  Criticality: the Fig. 3 pattern — 1500 uncritical
    elements on the padded planes j = 12 and i = 12. *)

module Make_generic (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

module App : Scvad_core.App.S

(** Grid-parameterized kernel (class S and W). *)
module Make_sized (_ : Adi_common.GRID) (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

(** Class W (24^3): the scaling study. *)
module App_w : Scvad_core.App.S
