(* Shared structure of the three ADI-family benchmarks (BT, SP, LU).

   All three solve 5-component nonlinear PDE systems on the class-S
   12x12x12 grid with arrays padded to [12][13][13][5] — 10140 elements
   of which only k,j,i in 0..11 ever participate, which is exactly the
   critical/uncritical pattern of the paper's Fig. 3 (uncritical planes
   at j = 12 and i = 12).

   The physics here is a simplified (but nonlinear and coupled)
   convection-diffusion surrogate; what is faithful to NPB — and what
   the criticality analysis depends on — are the array shapes, loop
   ranges, sweep structure and the error_norm/rhs_norm reductions of
   Fig. 2. *)

(* Grid parameterization: class S is the paper's 12^3; the class-W
   configurations scale the same shapes (arrays padded by one in j and
   i) to larger grids. *)
module type GRID = sig
  val grid : int
end

module Class_s_grid : GRID = struct
  let grid = 12
end

(* NPB class-W problem sizes of the three ADI benchmarks. *)
module Bt_w_grid : GRID = struct
  let grid = 24
end

module Sp_w_grid : GRID = struct
  let grid = 36
end

module Lu_w_grid : GRID = struct
  let grid = 33
end

module Dims (G : GRID) = struct
  let grid = G.grid
  let jdim = grid + 1 (* padded j extent *)
  let idim = grid + 1 (* padded i extent *)
  let ncomp = 5
  let total = grid * jdim * idim * ncomp

  (* Flat offset of u[k][j][i][m]. *)
  let idx k j i m = ((((k * jdim) + j) * idim) + i) * ncomp + m

  let shape4 = lazy (Scvad_nd.Shape.create [ grid; jdim; idim; ncomp ])
  let shape3 = lazy (Scvad_nd.Shape.create [ grid; jdim; idim ])

  (* Flat offset into a [grid][grid+1][grid+1] array. *)
  let idx3 k j i = ((k * jdim) + j) * idim + i

  let total3 = grid * jdim * idim
end

(* The paper's class-S dimensions at top level (10140 elements etc.). *)
include Dims (Class_s_grid)

module Make_sized (G : GRID) (S : Scvad_ad.Scalar.S) = struct
  module D = Dims (G)

  let grid = D.grid
  let ncomp = D.ncomp
  let idx = D.idx
  (* NPB-style exact solution: a smooth polynomial in the unit-cube
     coordinates with distinct coefficients per component (stand-in for
     NPB's ce[5][13] table). *)
  let exact_solution xi eta zeta =
    Array.init ncomp (fun m ->
        let fm = float_of_int m in
        S.of_float
          (2.0 +. (0.1 *. fm)
          +. (xi *. (1.0 +. (0.3 *. fm)))
          +. (eta *. (0.8 -. (0.2 *. fm)))
          +. (zeta *. (0.5 +. (0.15 *. fm)))
          +. (xi *. eta *. 0.2)
          +. (eta *. zeta *. 0.1)
          +. (xi *. zeta *. (0.05 *. (fm +. 1.)))))

  let coord n = float_of_int n /. float_of_int (grid - 1)

  (* Fill u over the active 0..grid-1 ranges with a perturbed exact
     solution; padded entries (j = 12, i = 12) stay zero, as in the C
     benchmarks where static storage is zero-initialized and never
     touched.

     The perturbation matters for the analysis: NPB's initialize uses a
     transfinite interpolation that nowhere coincides exactly with the
     reference solution, so the squared-error reduction (Fig. 2) has a
     nonzero slope at every active point.  An unperturbed start would
     leave d(add^2)/du = 2*add = 0 at never-updated cells and
     misclassify cube edges/corners as uncritical. *)
  let initialize (u : S.t array) =
    Array.fill u 0 (Array.length u) S.zero;
    for k = 0 to grid - 1 do
      for j = 0 to grid - 1 do
        for i = 0 to grid - 1 do
          let e = exact_solution (coord i) (coord j) (coord k) in
          for m = 0 to ncomp - 1 do
            (* In [1.0000, 1.0002] and never exactly 1. *)
            let wobble =
              1.0001 +. (1e-4 *. Stdlib.sin (float_of_int (idx k j i m)))
            in
            u.(idx k j i m) <- S.(e.(m) *. of_float wobble)
          done
        done
      done
    done

  (* The paper's Fig. 2 reduction: RMS deviation from the exact solution
     over k,j,i in 0 .. grid_points-1 — the read pattern that leaves
     j = 12 and i = 12 uncritical.  [mmax] limits the components read
     (LU's variant touches only components 0..3). *)
  let error_norm ?(mmax = ncomp) (u : S.t array) =
    let rms = Array.make ncomp S.zero in
    for k = 0 to grid - 1 do
      let zeta = coord k in
      for j = 0 to grid - 1 do
        let eta = coord j in
        for i = 0 to grid - 1 do
          let xi = coord i in
          let u_exact = exact_solution xi eta zeta in
          for m = 0 to mmax - 1 do
            let add = S.(u.(idx k j i m) -. u_exact.(m)) in
            rms.(m) <- S.(rms.(m) +. (add *. add))
          done
        done
      done
    done;
    let scale = S.of_float (float_of_int (grid * grid * grid)) in
    Array.map (fun r -> S.(sqrt (r /. scale))) rms

  (* RMS of a full padded field over the active ranges (NPB's
     rhs_norm). *)
  let rhs_norm ?(mmax = ncomp) (r : S.t array) =
    let rms = Array.make ncomp S.zero in
    for k = 0 to grid - 1 do
      for j = 0 to grid - 1 do
        for i = 0 to grid - 1 do
          for m = 0 to mmax - 1 do
            let x = r.(idx k j i m) in
            rms.(m) <- S.(rms.(m) +. (x *. x))
          done
        done
      done
    done;
    let scale = S.of_float (float_of_int (grid * grid * grid)) in
    Array.map (fun r -> S.(sqrt (r /. scale))) rms

  let sum (a : S.t array) = Array.fold_left (fun acc x -> S.(acc +. x)) S.zero a

  (* Convection-diffusion right-hand side with nearest-neighbour central
     differences in the three directions plus a local component
     coupling.  For interior points 1..grid-2 the stencil reads
     0..grid-1 in every dimension: together with [error_norm] this is
     the full 12x12x12 read set of the ADI benchmarks. *)
  let compute_rhs ~dt (u : S.t array) (rhs : S.t array) =
    let d = S.of_float (dt *. 0.25) in
    let cpl = S.of_float (dt *. 0.05) in
    Array.fill rhs 0 (Array.length rhs) S.zero;
    for k = 1 to grid - 2 do
      for j = 1 to grid - 2 do
        for i = 1 to grid - 2 do
          for m = 0 to ncomp - 1 do
            let c = u.(idx k j i m) in
            let lap =
              S.(
                u.(idx k j (i - 1) m)
                +. u.(idx k j (i + 1) m)
                +. u.(idx k (j - 1) i m)
                +. u.(idx k (j + 1) i m)
                +. u.(idx (k - 1) j i m)
                +. u.(idx (k + 1) j i m)
                -. (of_float 6. *. c))
            in
            let coupling = S.(cpl *. u.(idx k j i ((m + 1) mod ncomp))) in
            rhs.(idx k j i m) <- S.((d *. lap) +. coupling -. (cpl *. c))
          done
        done
      done
    done
end

module Make (S : Scvad_ad.Scalar.S) = Make_sized (Class_s_grid) (S)
