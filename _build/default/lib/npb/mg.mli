(** MG — V-cycle MultiGrid Poisson solver (NPB kernel).

    Checkpoint variables (Table I): double u[46480], double r[46480],
    int it — flat multi-level arrays, finest level first (class S).
    Criticality: u keeps only the finest (2{^lt}+2)³ level (coarse
    levels are zeroed before use; Fig. 4); r keeps the restriction
    stencil's read set [1..2{^lt}+1]³ (Fig. 5).  Class W scales the
    same pattern to a 64³ finest grid. *)

module type CONFIG = sig
  (** finest level: grid 2^lt *)
  val lt : int

  (** flat element count of u and r (class S pads to the paper's 46480
      with 64 slack words) *)
  val nv : int

  val niter : int
end

module Class_s : CONFIG
module Class_w : CONFIG

(** Level extent including borders: 2^l + 2. *)
val extent : int -> int

module Make_sized (C : CONFIG) (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

(** [Make_sized (Class_s)]. *)
module Make_generic (S : Scvad_ad.Scalar.S) :
  Scvad_core.App.INSTANCE with type scalar = S.t

(** The paper's configuration (class S). *)
module App : Scvad_core.App.S

(** Class W (64^3): the scaling study. *)
module App_w : Scvad_core.App.S
