(* The benchmark registry: the eight NPB kernels the paper evaluates,
   in the paper's order. *)

let all : (module Scvad_core.App.S) list =
  [ (module Bt.App);
    (module Sp.App);
    (module Mg.App);
    (module Cg.App);
    (module Lu.App);
    (module Ft.App);
    (module Ep.App);
    (module Is.App) ]

(* Extra configurations beyond the paper's eight: the class-W scaling
   study and the reduced CG used by expensive ablations. *)
let extended : (module Scvad_core.App.S) list =
  all
  @ [ (module Bt.App_w); (module Sp.App_w); (module Lu.App_w);
      (module Mg.App_w); (module Cg.App_w); (module Cg.Tiny_app) ]

let find name =
  List.find_opt
    (fun (module A : Scvad_core.App.S) -> A.name = name)
    extended

let names =
  List.map (fun (module A : Scvad_core.App.S) -> A.name) all

(* Expected uncritical counts from the paper's Table II (text-consistent
   version: the paper's LU(rsd) and LU(rho_i) rows are swapped relative
   to its own §IV-B prose; MG(r) follows the table, not the prose's
   10479).  Used by the test suite and reports. *)
let paper_table2 =
  [ ("bt", "u", 1500, 10140);
    ("sp", "u", 1500, 10140);
    ("mg", "u", 7176, 46480);
    ("mg", "r", 10543, 46480);
    ("cg", "x", 2, 1402);
    ("lu", "qs", 300, 2028);
    ("lu", "rho_i", 300, 2028);
    ("lu", "rsd", 1500, 10140);
    ("lu", "u", 1628, 10140);
    ("ft", "y", 4096, 266240) ]
