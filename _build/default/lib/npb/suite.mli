(** The benchmark registry: the paper's eight NPB kernels. *)

val all : (module Scvad_core.App.S) list

(** [all] plus the class-W scaling configurations and the reduced CG
    used by ablations. *)
val extended : (module Scvad_core.App.S) list

(** Looks up [extended]. *)
val find : string -> (module Scvad_core.App.S) option
val names : string list

(** The paper's Table II (text-consistent version):
    (benchmark, variable, uncritical, total). *)
val paper_table2 : (string * string * int * int) list
