(** Shared structure of the ADI-family benchmarks (BT, SP, LU).

    Class-S 12x12x12 grids in [12][13][13][5] arrays padded to 13 in j
    and i — only k,j,i in 0..11 ever participate, the paper's Fig. 3
    pattern. *)

(** Grid parameterization: class S (the paper) and the NPB class-W
    sizes of the three benchmarks. *)
module type GRID = sig
  val grid : int
end

module Class_s_grid : GRID
module Bt_w_grid : GRID
module Sp_w_grid : GRID
module Lu_w_grid : GRID

(** Dimension algebra of one grid size: arrays padded by one in j and
    i. *)
module Dims (G : GRID) : sig
  val grid : int
  val jdim : int
  val idim : int
  val ncomp : int
  val total : int
  val idx : int -> int -> int -> int -> int
  val idx3 : int -> int -> int -> int
  val total3 : int
  val shape4 : Scvad_nd.Shape.t Lazy.t
  val shape3 : Scvad_nd.Shape.t Lazy.t
end

val grid : int
val jdim : int
val idim : int
val ncomp : int

(** grid * jdim * idim * ncomp = 10140. *)
val total : int

(** Flat offset of u[k][j][i][m]. *)
val idx : int -> int -> int -> int -> int

(** Flat offset into a [12][13][13] coefficient field. *)
val idx3 : int -> int -> int -> int

(** grid * jdim * idim = 2028. *)
val total3 : int

val shape4 : Scvad_nd.Shape.t Lazy.t
val shape3 : Scvad_nd.Shape.t Lazy.t

module Make_sized (_ : GRID) (S : Scvad_ad.Scalar.S) : sig
  (** The five-component reference solution at unit-cube coordinates. *)
  val exact_solution : float -> float -> float -> S.t array

  val coord : int -> float

  (** Fill the active 0..grid-1 ranges with a perturbed reference field
      (nowhere exactly at the error-norm minimum, like NPB's transfinite
      initialization); padding stays zero. *)
  val initialize : S.t array -> unit

  (** Fig. 2's reduction: RMS deviation from the reference over
      k,j,i in 0..grid-1; [mmax] limits the components read. *)
  val error_norm : ?mmax:int -> S.t array -> S.t array

  (** RMS of a residual field over the active ranges. *)
  val rhs_norm : ?mmax:int -> S.t array -> S.t array

  val sum : S.t array -> S.t

  (** Convection-diffusion right-hand side: interior stencil whose read
      set is the full 12x12x12 active cube. *)
  val compute_rhs : dt:float -> S.t array -> S.t array -> unit
end

(** [Make_sized (Class_s_grid)]. *)
module Make (S : Scvad_ad.Scalar.S) : module type of Make_sized (Class_s_grid) (S)
