(* Checkpoint file format.

   One file holds the full state of one application at one iteration: a
   header, one section per checkpoint variable, and a trailing CRC-32.
   Sections come in two flavours:

   - full: every scalar of the variable (the baseline the paper compares
     against);
   - pruned: only the elements inside the critical {!Regions} — the
     paper's optimized checkpoint.  The regions are embedded (and also
     exportable as a sidecar auxiliary file, cf. {!aux_file_string}).

   Payload values are packed per logical element: an element owns
   [spe] consecutive scalars (spe = 2 for FT's dcomplex cells). *)

exception Corrupt of string

let magic = "SCVD0001"

(* F32 payloads store values rounded to IEEE single precision — the
   mixed-precision extension (paper §VII: "using lower precision for
   uncritical or even those elements that are of very low impact"). *)
type payload = F64 of float array | I64 of int array | F32 of float array

type section = {
  name : string;
  dims : int array;
  spe : int; (* scalars per logical element *)
  regions : Regions.t option; (* None = full section *)
  payload : payload;
}

type file = { app : string; iteration : int; sections : section list }

let element_count s = Array.fold_left ( * ) 1 s.dims

(* Scalars a payload must carry. *)
let expected_values s =
  let elems =
    match s.regions with
    | None -> element_count s
    | Some r -> Regions.cardinal r
  in
  elems * s.spe

let payload_length = function
  | F64 a | F32 a -> Array.length a
  | I64 a -> Array.length a

let check_section s =
  if s.spe <= 0 then invalid_arg "Ckpt_format: spe must be positive";
  (match s.regions with
  | Some r when not (Regions.is_well_formed r) ->
      invalid_arg "Ckpt_format: malformed regions"
  | _ -> ());
  if payload_length s.payload <> expected_values s then
    invalid_arg
      (Printf.sprintf "Ckpt_format: section %S carries %d values, expected %d"
         s.name (payload_length s.payload) (expected_values s))

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let encode_section b s =
  check_section s;
  let open Bytesio.Wr in
  str b s.name;
  u8 b (match s.payload with F64 _ -> 0 | I64 _ -> 1 | F32 _ -> 2);
  u32 b (Array.length s.dims);
  Array.iter (u32 b) s.dims;
  u32 b s.spe;
  (match s.regions with
  | None -> u8 b 0
  | Some r ->
      u8 b 1;
      u32 b (Regions.count_regions r);
      List.iter
        (fun { Regions.start; stop } ->
          int_as_i64 b start;
          int_as_i64 b stop)
        (Regions.spans r));
  int_as_i64 b (payload_length s.payload);
  match s.payload with
  | F64 a -> Array.iter (f64 b) a
  | I64 a -> Array.iter (int_as_i64 b) a
  | F32 a ->
      Array.iter
        (fun x ->
          let bits = Int32.bits_of_float x in
          for i = 0 to 3 do
            u8 b (Int32.to_int (Int32.shift_right_logical bits (8 * i)) land 0xFF)
          done)
        a

let encode file =
  let b = Bytesio.Wr.create () in
  Buffer.add_string b magic;
  Bytesio.Wr.str b file.app;
  Bytesio.Wr.u32 b file.iteration;
  Bytesio.Wr.u32 b (List.length file.sections);
  List.iter (encode_section b) file.sections;
  let body = Bytesio.Wr.contents b in
  let crc = Crc32.of_string body in
  let tail = Bytesio.Wr.create () in
  Bytesio.Wr.i64 tail (Int64.of_int32 crc);
  body ^ Bytesio.Wr.contents tail

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let decode_section r =
  let open Bytesio.Rd in
  let name = str r in
  let tag = u8 r in
  let rank = u32 r in
  if rank > 16 then raise (Corrupt "absurd rank");
  let dims = Array.init rank (fun _ -> u32 r) in
  let spe = u32 r in
  let regions =
    match u8 r with
    | 0 -> None
    | 1 ->
        let n = u32 r in
        let spans =
          List.init n (fun _ ->
              let start = int_from_i64 r in
              let stop = int_from_i64 r in
              { Regions.start; stop })
        in
        if not (Regions.is_well_formed spans) then
          raise (Corrupt "malformed regions");
        Some spans
    | _ -> raise (Corrupt "bad regions flag")
  in
  let count = int_from_i64 r in
  let scalar_bytes = if tag = 2 then 4 else 8 in
  if count < 0 || count > remaining r / scalar_bytes then
    raise (Corrupt "bad count");
  let payload =
    match tag with
    | 0 -> F64 (Array.init count (fun _ -> f64 r))
    | 1 -> I64 (Array.init count (fun _ -> int_from_i64 r))
    | 2 ->
        F32
          (Array.init count (fun _ ->
               let bits = ref 0l in
               for i = 0 to 3 do
                 bits :=
                   Int32.logor !bits (Int32.shift_left (Int32.of_int (u8 r)) (8 * i))
               done;
               Int32.float_of_bits !bits))
    | _ -> raise (Corrupt "bad payload tag")
  in
  let s = { name; dims; spe; regions; payload } in
  if payload_length payload <> expected_values s then
    raise (Corrupt "payload length mismatch");
  s

let decode data =
  if String.length data < String.length magic + 8 then
    raise (Corrupt "truncated file");
  let body_len = String.length data - 8 in
  let body = String.sub data 0 body_len in
  (* Verify the trailing CRC first. *)
  let crc_rd = Bytesio.Rd.of_string (String.sub data body_len 8) in
  let stored_crc = Int64.to_int32 (Bytesio.Rd.i64 crc_rd) in
  if Crc32.of_string body <> stored_crc then raise (Corrupt "CRC mismatch");
  let r = Bytesio.Rd.of_string body in
  (try
     if Bytesio.Rd.raw r (String.length magic) <> magic then
       raise (Corrupt "bad magic")
   with Bytesio.Rd.Underrun -> raise (Corrupt "truncated header"));
  try
    let app = Bytesio.Rd.str r in
    let iteration = Bytesio.Rd.u32 r in
    let n = Bytesio.Rd.u32 r in
    if n > 1_000_000 then raise (Corrupt "absurd section count");
    let sections = List.init n (fun _ -> decode_section r) in
    if Bytesio.Rd.remaining r <> 0 then raise (Corrupt "trailing bytes");
    { app; iteration; sections }
  with Bytesio.Rd.Underrun -> raise (Corrupt "truncated body")

(* ------------------------------------------------------------------ *)
(* Scatter/gather between full arrays and pruned payloads              *)
(* ------------------------------------------------------------------ *)

(* Gather the critical elements of a full scalar buffer into a packed
   payload. *)
let gather_f64 ~(data : float array) ~spe regions =
  let packed = Array.make (Regions.cardinal regions * spe) 0. in
  let pos = ref 0 in
  Regions.iter_elements regions (fun e ->
      for k = 0 to spe - 1 do
        packed.(!pos) <- data.((e * spe) + k);
        incr pos
      done);
  packed

let gather_i64 ~(data : int array) ~spe regions =
  let packed = Array.make (Regions.cardinal regions * spe) 0 in
  let pos = ref 0 in
  Regions.iter_elements regions (fun e ->
      for k = 0 to spe - 1 do
        packed.(!pos) <- data.((e * spe) + k);
        incr pos
      done);
  packed

(* Expand a section into a full scalar buffer; uncovered (uncritical)
   slots receive [poison] — on a real restart they hold whatever garbage
   survived the failure, and poisoning proves they are never read. *)
let scatter_f64 s ~poison =
  let total = element_count s * s.spe in
  match (s.payload, s.regions) with
  | F64 packed, None -> Array.copy packed
  | F64 packed, Some regions ->
      let out = Array.make total poison in
      let pos = ref 0 in
      Regions.iter_elements regions (fun e ->
          for k = 0 to s.spe - 1 do
            out.((e * s.spe) + k) <- packed.(!pos);
            incr pos
          done);
      out
  | F32 packed, None -> Array.copy packed
  | F32 packed, Some regions ->
      let out = Array.make total poison in
      let pos = ref 0 in
      Regions.iter_elements regions (fun e ->
          for k = 0 to s.spe - 1 do
            out.((e * s.spe) + k) <- packed.(!pos);
            incr pos
          done);
      out
  | I64 _, _ -> invalid_arg "scatter_f64: integer section"

let scatter_i64 s ~poison =
  let total = element_count s * s.spe in
  match (s.payload, s.regions) with
  | I64 packed, None -> Array.copy packed
  | I64 packed, Some regions ->
      let out = Array.make total poison in
      let pos = ref 0 in
      Regions.iter_elements regions (fun e ->
          for k = 0 to s.spe - 1 do
            out.((e * s.spe) + k) <- packed.(!pos);
            incr pos
          done);
      out
  | (F64 _ | F32 _), _ -> invalid_arg "scatter_i64: float section"

(* ------------------------------------------------------------------ *)
(* Sizes and the sidecar auxiliary file                                *)
(* ------------------------------------------------------------------ *)

(* Paper-style accounting: payload bytes of one section (8 bytes per
   double/int scalar, 4 per single), excluding headers. *)
let payload_bytes s =
  let width = match s.payload with F32 _ -> 4 | F64 _ | I64 _ -> 8 in
  width * payload_length s.payload

(* Auxiliary metadata bytes for a pruned section. *)
let aux_bytes s =
  match s.regions with None -> 0 | Some r -> Regions.aux_bytes r

(* The paper keeps region bounds in a separate auxiliary file; we embed
   them but can also emit the sidecar form. *)
let aux_file_string file =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      match s.regions with
      | None -> ()
      | Some r -> Buffer.add_string b (Printf.sprintf "%s %s\n" s.name (Regions.to_string r)))
    file.sections;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* File IO                                                             *)
(* ------------------------------------------------------------------ *)

let write_file path file =
  let data = encode file in
  let oc = open_out_bin path in
  (try output_string oc data
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  decode data
