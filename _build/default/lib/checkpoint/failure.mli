(** Failure injection for checkpoint/restart validation.

    Models the paper's §IV-C experiment: crash the run, restore only the
    critical elements, poison the rest, and require the application's own
    verification to pass. *)

exception Crash of { iteration : int }

(** [crash_if ~at ~iteration] raises {!Crash} when the run reaches the
    sabotaged iteration. *)
val crash_if : at:int -> iteration:int -> unit

(** What uncritical elements hold after a restart.  [Nan] (default
    elsewhere) propagates loudly if such an element is ever read. *)
type poison = Nan | Zero | Garbage of float

val poison_value : poison -> float
val int_poison_value : poison -> int

(** Silent-data-corruption model: flip one IEEE-754 bit (0 = lowest
    mantissa bit, 63 = sign).  Raises outside 0..63. *)
val flip_bit : float -> bit:int -> float

(** Flip one bit of an int (0..62). *)
val flip_int_bit : int -> bit:int -> int
