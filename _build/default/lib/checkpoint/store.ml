(* Versioned checkpoint directory.

   One file per checkpointed iteration, written atomically (temp file +
   rename) so a crash mid-write can never corrupt the latest good
   checkpoint; optional rotation keeps the newest [keep_last] files, the
   usual HPC practice of retaining several checkpoint versions. *)

type t = { dir : string; keep_last : int option }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?keep_last dir =
  (match keep_last with
  | Some k when k < 1 -> invalid_arg "Store.create: keep_last must be >= 1"
  | _ -> ());
  mkdir_p dir;
  { dir; keep_last }

let dir t = t.dir
let basename iteration = Printf.sprintf "ckpt_%09d.scvd" iteration
let path_of_iteration t iteration = Filename.concat t.dir (basename iteration)

let iteration_of_basename name =
  let prefix = "ckpt_" and suffix = ".scvd" in
  let plen = String.length prefix and slen = String.length suffix in
  if
    String.length name > plen + slen
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name suffix
  then int_of_string_opt (String.sub name plen (String.length name - plen - slen))
  else None

let list_iterations t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map iteration_of_basename
  |> List.sort compare

let rotate t =
  match t.keep_last with
  | None -> ()
  | Some k ->
      let iters = list_iterations t in
      let excess = List.length iters - k in
      if excess > 0 then
        List.iteri
          (fun i it ->
            if i < excess then Sys.remove (path_of_iteration t it))
          iters

(* Atomic save; also writes the sidecar auxiliary file when any section
   is pruned.  Returns the checkpoint path. *)
let save ?(sidecar_aux = false) t (file : Ckpt_format.file) =
  let path = path_of_iteration t file.iteration in
  let tmp = path ^ ".tmp" in
  Ckpt_format.write_file tmp file;
  Sys.rename tmp path;
  if sidecar_aux then begin
    let aux = Ckpt_format.aux_file_string file in
    if aux <> "" then begin
      let aux_path = path ^ ".aux" in
      let tmp_aux = aux_path ^ ".tmp" in
      let oc = open_out tmp_aux in
      output_string oc aux;
      close_out oc;
      Sys.rename tmp_aux aux_path
    end
  end;
  rotate t;
  path

let load t iteration = Ckpt_format.read_file (path_of_iteration t iteration)

let latest t =
  match List.rev (list_iterations t) with
  | [] -> None
  | it :: _ -> Some (load t it)

(* Bytes on disk of one checkpoint (incl. its sidecar, if present). *)
let disk_bytes t iteration =
  let path = path_of_iteration t iteration in
  let size p = if Sys.file_exists p then (Unix.stat p).Unix.st_size else 0 in
  size path + size (path ^ ".aux")

(* Remove every checkpoint (and sidecar) in the store. *)
let wipe t =
  Array.iter
    (fun name ->
      if String.length name >= 5 && String.sub name 0 5 = "ckpt_" then
        Sys.remove (Filename.concat t.dir name))
    (Sys.readdir t.dir)
