(** Checkpoint file format: header, one section per checkpoint variable,
    trailing CRC-32.

    A {e full} section carries every scalar of its variable (the paper's
    baseline).  A {e pruned} section carries only the elements covered by
    its critical {!Regions} plus the region bounds themselves — the
    paper's optimized checkpoint with its auxiliary file. *)

exception Corrupt of string

val magic : string

type payload =
  | F64 of float array
  | I64 of int array
  | F32 of float array
      (** values rounded to IEEE single precision on encode — the
          mixed-precision extension (4 bytes per scalar) *)

type section = {
  name : string;
  dims : int array;  (** logical element shape *)
  spe : int;  (** scalars per logical element (2 for FT's dcomplex) *)
  regions : Regions.t option;  (** [None] = full section *)
  payload : payload;  (** packed values, element-major *)
}

type file = { app : string; iteration : int; sections : section list }

(** Number of logical elements of the variable. *)
val element_count : section -> int

(** Serialize; raises [Invalid_argument] on malformed sections. *)
val encode : file -> string

(** Parse and verify CRC; raises {!Corrupt}. *)
val decode : string -> file

(** Pack the critical elements of a full scalar buffer (length
    [elements * spe]) into a pruned payload. *)
val gather_f64 : data:float array -> spe:int -> Regions.t -> float array

val gather_i64 : data:int array -> spe:int -> Regions.t -> int array

(** Expand a section to a full scalar buffer; slots outside the regions
    receive [poison] (proving on restart that they are never read). *)
val scatter_f64 : section -> poison:float -> float array

val scatter_i64 : section -> poison:int -> int array

(** Payload bytes (8 per double/int scalar, 4 per single), the paper's
    storage metric. *)
val payload_bytes : section -> int

(** Bytes of region metadata (the auxiliary-file cost); 0 when full. *)
val aux_bytes : section -> int

(** Sidecar auxiliary file in the paper's spirit: one line per pruned
    variable with its critical spans. *)
val aux_file_string : file -> string

val write_file : string -> file -> unit
val read_file : string -> file
