(** Checkpoint interval theory (Young 1974, Daly 2006).

    Translates the paper's checkpoint-size reduction into operational
    terms: the optimal checkpoint interval and the expected fraction of
    machine time lost to checkpointing and failure recovery. *)

type params = {
  checkpoint_cost : float;  (** C: seconds to write one checkpoint *)
  mtbf : float;  (** M: mean time between failures, seconds *)
  restart_cost : float;  (** R: seconds to restore and resume *)
}

(** Young's optimum √(2CM). *)
val young : params -> float

(** Daly's higher-order optimum; degrades to M when C ≥ 2M. *)
val daly : params -> float

(** Expected lost-time fraction when checkpointing every [tau] seconds:
    C/τ + (τ/2 + R + C)/M. *)
val expected_overhead : params -> tau:float -> float

(** {!expected_overhead} at the Young optimum. *)
val optimal_overhead : params -> float

type comparison = {
  full : params;
  pruned : params;
  full_tau : float;
  pruned_tau : float;
  full_overhead : float;
  pruned_overhead : float;
}

(** Scale the checkpoint cost by the kept fraction (pruned bytes /
    original bytes) and compare both operating points at their own
    optimal intervals. *)
val compare_pruning : params -> kept_fraction:float -> comparison
