(* Failure injection.

   The paper validates criticality by killing the run and restarting from
   a checkpoint that carries only critical elements (§IV-C).  [Crash]
   models the failure; [poison] values model the garbage that uncritical
   elements hold after a restart — NaN is the default because it
   propagates loudly if an "uncritical" element is ever actually read. *)

exception Crash of { iteration : int }

(* Raise when the run reaches the sabotaged iteration. *)
let crash_if ~at ~iteration =
  if iteration = at then raise (Crash { iteration })

type poison = Nan | Zero | Garbage of float

let poison_value = function
  | Nan -> Float.nan
  | Zero -> 0.
  | Garbage v -> v

(* Integer poison: an outlandish sentinel rather than NaN. *)
let int_poison_value = function
  | Nan -> min_int / 2
  | Zero -> 0
  | Garbage v -> int_of_float v

(* Silent-data-corruption model: flip one mantissa/exponent/sign bit of
   a double (bit 0 = lowest mantissa bit, bit 63 = sign).  The paper's
   premise in reverse: corrupting an uncritical element must not change
   the output; corrupting a critical element generally must. *)
let flip_bit x ~bit =
  if bit < 0 || bit > 63 then invalid_arg "Failure.flip_bit: bit in 0..63";
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float x) (Int64.shift_left 1L bit))

let flip_int_bit x ~bit =
  if bit < 0 || bit > 62 then invalid_arg "Failure.flip_int_bit: bit in 0..62";
  x lxor (1 lsl bit)
