(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.  Guards every
   checkpoint file against torn writes and bit rot. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc (bytes : Bytes.t) off len =
  let table = Lazy.force table in
  let crc = ref (Int32.lognot crc) in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.unsafe_get bytes i)))) 0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.lognot !crc

let of_bytes bytes = update 0l bytes 0 (Bytes.length bytes)
let of_string s = of_bytes (Bytes.unsafe_of_string s)
