(* Contiguous critical regions — the paper's auxiliary file.

   "The auxiliary file only records the start and end locations of the
   region of continuous critical elements" (§III-B).  A region set is a
   sorted list of disjoint, non-adjacent, non-empty half-open intervals
   [start, stop).  Only critical elements fall inside a region; the
   pruned checkpoint stores exactly those elements. *)

type span = { start : int; stop : int }

type t = span list

let empty = []
let spans t = t
let count_regions = List.length

(* Number of elements covered. *)
let cardinal t = List.fold_left (fun acc s -> acc + s.stop - s.start) 0 t

let is_well_formed t =
  let rec go prev_stop = function
    | [] -> true
    | { start; stop } :: rest ->
        (* non-empty, strictly after the previous span with a gap
           (adjacent spans must have been merged) *)
        start >= 0 && stop > start && start > prev_stop
        && go stop rest
  in
  (* prev_stop = -1 allows a first span starting at 0 but forbids
     adjacency with the imaginary previous span. *)
  match t with
  | [] -> true
  | { start; stop } :: rest -> start >= 0 && stop > start && go stop rest

(* Build from a criticality mask: one span per maximal run of [true]. *)
let of_mask (mask : bool array) =
  let n = Array.length mask in
  let rec scan i acc =
    if i >= n then List.rev acc
    else if not mask.(i) then scan (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && mask.(!j) do
        incr j
      done;
      scan !j ({ start = i; stop = !j } :: acc)
    end
  in
  scan 0 []

let to_mask ~total t =
  let mask = Array.make total false in
  List.iter
    (fun { start; stop } ->
      if start < 0 || stop > total then
        invalid_arg "Regions.to_mask: span out of bounds";
      Array.fill mask start (stop - start) true)
    t;
  mask

let mem t i = List.exists (fun { start; stop } -> i >= start && i < stop) t

(* Uncritical side: the gaps between spans within [0, total). *)
let complement ~total t =
  let rec go pos = function
    | [] -> if pos < total then [ { start = pos; stop = total } ] else []
    | { start; stop } :: rest ->
        let tail = go stop rest in
        if pos < start then { start = pos; stop = start } :: tail else tail
  in
  go 0 t

let iter_elements t f =
  List.iter
    (fun { start; stop } ->
      for i = start to stop - 1 do
        f i
      done)
    t

(* Bytes the paper's auxiliary file costs: two offsets per region. *)
let aux_bytes ?(bytes_per_bound = 8) t = 2 * bytes_per_bound * List.length t

let to_string t =
  String.concat ","
    (List.map (fun { start; stop } -> Printf.sprintf "%d-%d" start stop) t)
