lib/checkpoint/store.ml: Array Ckpt_format Filename List Printf String Sys Unix
