lib/checkpoint/ckpt_format.ml: Array Buffer Bytesio Crc32 Int32 Int64 List Printf Regions String
