lib/checkpoint/regions.mli:
