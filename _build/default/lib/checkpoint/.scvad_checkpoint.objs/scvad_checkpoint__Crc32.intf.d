lib/checkpoint/crc32.mli: Bytes
