lib/checkpoint/failure.ml: Float Int64
