lib/checkpoint/interval.mli:
