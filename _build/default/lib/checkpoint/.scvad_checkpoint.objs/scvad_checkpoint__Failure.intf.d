lib/checkpoint/failure.mli:
