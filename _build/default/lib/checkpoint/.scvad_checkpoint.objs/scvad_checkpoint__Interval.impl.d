lib/checkpoint/interval.ml:
