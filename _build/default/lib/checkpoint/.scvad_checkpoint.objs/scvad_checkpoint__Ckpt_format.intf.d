lib/checkpoint/ckpt_format.mli: Regions
