lib/checkpoint/regions.ml: Array List Printf String
