lib/checkpoint/bytesio.ml: Buffer Char Int64 String
