lib/checkpoint/store.mli: Ckpt_format
