(** CRC-32 (IEEE), table-driven.  Integrity check for checkpoint files. *)

(** [update crc bytes off len] extends a running checksum. Start from
    [0l]. *)
val update : int32 -> Bytes.t -> int -> int -> int32

val of_bytes : Bytes.t -> int32
val of_string : string -> int32
