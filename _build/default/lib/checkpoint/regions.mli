(** Contiguous critical regions — the paper's "auxiliary file" encoding.

    A region set is a sorted list of disjoint, non-adjacent, non-empty
    half-open spans of element indices; spans cover exactly the critical
    elements of one checkpoint variable. *)

type span = { start : int; stop : int }
type t = span list

val empty : t
val spans : t -> span list
val count_regions : t -> int

(** Number of covered (critical) elements. *)
val cardinal : t -> int

(** Sortedness / disjointness / minimality invariant. *)
val is_well_formed : t -> bool

(** One span per maximal run of [true] in a criticality mask. *)
val of_mask : bool array -> t

val to_mask : total:int -> t -> bool array
val mem : t -> int -> bool

(** The uncovered (uncritical) spans within [0, total). *)
val complement : total:int -> t -> t

(** Visit covered element indices in increasing order. *)
val iter_elements : t -> (int -> unit) -> unit

(** Size of the auxiliary metadata: two bounds per region. *)
val aux_bytes : ?bytes_per_bound:int -> t -> int

(** E.g. ["0-39304,46416-46480"]. *)
val to_string : t -> string
