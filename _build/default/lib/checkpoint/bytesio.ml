(* Little-endian binary encoding helpers for the checkpoint format. *)

module Wr = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let u8 b x = Buffer.add_char b (Char.chr (x land 0xFF))

  let u32 b x =
    if x < 0 then invalid_arg "Bytesio.u32: negative";
    for i = 0 to 3 do
      u8 b ((x lsr (8 * i)) land 0xFF)
    done

  let i64 b (x : int64) =
    for i = 0 to 7 do
      u8 b (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xFF)
    done

  let int_as_i64 b x = i64 b (Int64.of_int x)
  let f64 b x = i64 b (Int64.bits_of_float x)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let contents = Buffer.contents
end

module Rd = struct
  type t = { data : string; mutable pos : int }

  exception Underrun

  let of_string data = { data; pos = 0 }
  let remaining r = String.length r.data - r.pos

  let u8 r =
    if r.pos >= String.length r.data then raise Underrun;
    let x = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    x

  let u32 r =
    let b0 = u8 r in
    let b1 = u8 r in
    let b2 = u8 r in
    let b3 = u8 r in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

  let i64 r =
    let acc = ref 0L in
    for i = 0 to 7 do
      acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (u8 r)) (8 * i))
    done;
    !acc

  let int_from_i64 r = Int64.to_int (i64 r)
  let f64 r = Int64.float_of_bits (i64 r)

  (* [len] raw bytes without a length prefix. *)
  let raw r len =
    if remaining r < len then raise Underrun;
    let s = String.sub r.data r.pos len in
    r.pos <- r.pos + len;
    s

  let str r =
    let len = u32 r in
    raw r len
end
