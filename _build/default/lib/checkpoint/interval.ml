(* Checkpoint interval theory: Young's and Daly's classical models.

   The paper reduces the cost C of writing one checkpoint (by pruning
   uncritical elements).  These models translate that saving into what a
   system operator actually feels: the optimal checkpoint interval
   tau* and the expected fraction of machine time lost to
   checkpointing + failures, as a function of C and the mean time
   between failures M.

     Young (1974):  tau* = sqrt(2 C M)
     Daly  (2006):  tau* = sqrt(2 C (M + R)) * [1 + ...] refinement,
                    valid for C << M; falls back to M for huge C.

   Expected overhead model (first order, failure rate 1/M, restart cost
   R, rework of tau/2 on average):

     overhead(tau) = C / tau                 (checkpointing)
                   + (tau/2 + R + C) / M     (lost work per failure)   *)

type params = {
  checkpoint_cost : float; (* C: seconds to write one checkpoint *)
  mtbf : float; (* M: mean time between failures, seconds *)
  restart_cost : float; (* R: seconds to restore and resume *)
}

let validate { checkpoint_cost; mtbf; restart_cost } =
  if checkpoint_cost <= 0. || mtbf <= 0. || restart_cost < 0. then
    invalid_arg "Interval: need C > 0, M > 0, R >= 0"

(* Young's optimum. *)
let young p =
  validate p;
  sqrt (2. *. p.checkpoint_cost *. p.mtbf)

(* Daly's higher-order optimum (2006), his eq. (37): for C < 2M,
   tau* = sqrt(2 C M) * [1 + sqrt(C / (2 M)) / 3 + C / (9 M)] - C,
   else tau* = M. *)
let daly p =
  validate p;
  let c = p.checkpoint_cost and m = p.mtbf in
  if c >= 2. *. m then m
  else begin
    let x = sqrt (c /. (2. *. m)) in
    (sqrt (2. *. c *. m) *. (1. +. (x /. 3.) +. (c /. (9. *. m)))) -. c
  end

(* Expected fraction of wall-clock time lost to checkpointing and
   failure recovery when checkpointing every [tau] seconds. *)
let expected_overhead p ~tau =
  validate p;
  if tau <= 0. then invalid_arg "Interval.expected_overhead: tau <= 0";
  (p.checkpoint_cost /. tau)
  +. (((tau /. 2.) +. p.restart_cost +. p.checkpoint_cost) /. p.mtbf)

(* Overhead at the Young optimum. *)
let optimal_overhead p = expected_overhead p ~tau:(young p)

(* The effect of pruning: scale the checkpoint cost by the kept
   fraction (the paper's storage saving maps directly to write cost on
   bandwidth-bound storage) and report both operating points. *)
type comparison = {
  full : params;
  pruned : params;
  full_tau : float;
  pruned_tau : float;
  full_overhead : float;
  pruned_overhead : float;
}

let compare_pruning p ~kept_fraction =
  if kept_fraction <= 0. || kept_fraction > 1. then
    invalid_arg "Interval.compare_pruning: kept_fraction in (0, 1]";
  let pruned = { p with checkpoint_cost = p.checkpoint_cost *. kept_fraction } in
  {
    full = p;
    pruned;
    full_tau = young p;
    pruned_tau = young pruned;
    full_overhead = optimal_overhead p;
    pruned_overhead = optimal_overhead pruned;
  }
