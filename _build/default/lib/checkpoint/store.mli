(** Versioned checkpoint directory with atomic writes and rotation. *)

type t

(** [create ?keep_last dir] opens (creating if needed) a checkpoint
    directory.  With [keep_last = Some k], only the [k] newest
    checkpoints are retained after each save. *)
val create : ?keep_last:int -> string -> t

val dir : t -> string
val path_of_iteration : t -> int -> string

(** Iterations present, ascending. *)
val list_iterations : t -> int list

(** Atomic save (temp file + rename), then rotation.  With
    [sidecar_aux], also writes the paper-style [.aux] sidecar listing
    critical spans.  Returns the checkpoint path. *)
val save : ?sidecar_aux:bool -> t -> Ckpt_format.file -> string

val load : t -> int -> Ckpt_format.file

(** Newest checkpoint, if any. *)
val latest : t -> Ckpt_format.file option

(** On-disk bytes of one checkpoint including its sidecar. *)
val disk_bytes : t -> int -> int

(** Delete every checkpoint in the store. *)
val wipe : t -> unit
