(** Plain-float instantiation of {!Scalar.S}.

    This is the production mode: all operations alias the [Stdlib] float
    primitives, so a kernel functor applied to [Float_scalar] compiles to
    ordinary float code. *)

include Scalar.S with type t = float
