(* Integer dependence tracer.

   AD does not apply to integers, so the paper argues integer checkpoint
   variables (loop indices, IS's sort keys and bucket pointers) critical
   by inspection.  This module mechanizes the argument: traced ints carry
   a dependence-tape node, operations join parent dependences, and —
   crucially for bucket sort — a traced int used as an {e array subscript}
   taints the accessed element, so "this pointer stores the index of that
   array" becomes a real edge in the graph.  Criticality is then reverse
   reachability from the output, exactly as for floats. *)

type t = { id : int; v : int }

let const v = { id = -1; v }
let value x = x.v
let node_id x = x.id
let is_const x = x.id < 0
let var tape v = { id = Dep_tape.fresh_var tape; v }
let lift tape x = if is_const x then var tape x.v else x

let node2 tape v a b =
  if a.id < 0 && b.id < 0 then const v
  else { id = Dep_tape.push2 tape a.id b.id; v }

let add tape a b = node2 tape (a.v + b.v) a b
let sub tape a b = node2 tape (a.v - b.v) a b
let mul tape a b = node2 tape (a.v * b.v) a b
let div tape a b = node2 tape (a.v / b.v) a b
let rem tape a b = node2 tape (a.v mod b.v) a b
let shift_right tape a k = node2 tape (a.v asr k) a (const 0)
let shift_left tape a k = node2 tape (a.v lsl k) a (const 0)
let logand tape a b = node2 tape (a.v land b.v) a b

(* Comparisons return a traced 0/1 so that counters updated under a
   data-dependent branch inherit the dependence (control dependence made
   explicit — how IS's [passed_verification] stays critical). *)
let lt tape a b = node2 tape (if a.v < b.v then 1 else 0) a b
let le tape a b = node2 tape (if a.v <= b.v then 1 else 0) a b
let eq tape a b = node2 tape (if a.v = b.v then 1 else 0) a b

(* Array read through a traced subscript: the result depends on the cell
   value and on the subscript. *)
let get tape (arr : t array) (idx : t) =
  let cell = arr.(idx.v) in
  if cell.id < 0 && idx.id < 0 then const cell.v
  else { id = Dep_tape.push2 tape cell.id idx.id; v = cell.v }

(* Array write through a traced subscript: the stored value additionally
   depends on the subscript that selected the cell. *)
let set tape (arr : t array) (idx : t) (x : t) =
  let stored =
    if idx.id < 0 then x
    else { id = Dep_tape.push2 tape x.id idx.id; v = x.v }
  in
  arr.(idx.v) <- stored

type result = Dep_tape.reach option

let backward tape (output : t) =
  if is_const output then None
  else Some (Dep_tape.backward tape ~output:output.id)

let critical r x =
  match r with None -> false | Some g -> Dep_tape.reachable g x.id
