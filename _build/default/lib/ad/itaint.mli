(** Integer dependence tracer.

    Mechanizes the paper's manual criticality argument for integer
    checkpoint variables (IS's [key_array], [bucket_ptrs], loop indices):
    traced ints record a dependence graph — including dependence through
    array subscripts and through comparisons — and an element is critical
    iff the output is reachable from it. *)

type t = { id : int; v : int }

val const : int -> t
val value : t -> int
val node_id : t -> int
val is_const : t -> bool

(** Introduce one traced element. *)
val var : Dep_tape.t -> int -> t

val lift : Dep_tape.t -> t -> t

val add : Dep_tape.t -> t -> t -> t
val sub : Dep_tape.t -> t -> t -> t
val mul : Dep_tape.t -> t -> t -> t
val div : Dep_tape.t -> t -> t -> t
val rem : Dep_tape.t -> t -> t -> t
val shift_right : Dep_tape.t -> t -> int -> t
val shift_left : Dep_tape.t -> t -> int -> t
val logand : Dep_tape.t -> t -> t -> t

(** Traced comparisons: result value is 0/1 and depends on both sides, so
    branch-controlled counters inherit the dependence. *)
val lt : Dep_tape.t -> t -> t -> t

val le : Dep_tape.t -> t -> t -> t
val eq : Dep_tape.t -> t -> t -> t

(** [get tape arr idx] reads [arr] at a traced subscript; the result
    depends on both the cell and the subscript. *)
val get : Dep_tape.t -> t array -> t -> t

(** [set tape arr idx x] writes through a traced subscript; the stored
    value additionally depends on the subscript. *)
val set : Dep_tape.t -> t array -> t -> t -> unit

type result

val backward : Dep_tape.t -> t -> result

(** Does the output depend on this traced int? *)
val critical : result -> t -> bool
