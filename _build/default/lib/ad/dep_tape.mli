(** Edges-only dependence tape (no partial derivatives; 8 bytes/node).

    Shared substrate of {!Activity} and {!Itaint}.  A backward sweep
    computes the set of nodes the output {e depends on} (reverse
    reachability), without distinguishing zero-valued partials. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val capacity : t -> int
val clear : t -> unit

(** New independent variable node. *)
val fresh_var : t -> int

(** Unary dependence node. *)
val push1 : t -> int -> int

(** Binary dependence node. *)
val push2 : t -> int -> int -> int

type reach

(** Reverse reachability from [output], one linear pass. *)
val backward : t -> output:int -> reach

(** Is the node in the output's dependence cone? *)
val reachable : reach -> int -> bool
