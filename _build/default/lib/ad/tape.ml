(* Reverse-mode tape: a compact, append-only record of the data-flow graph.

   Each node has at most two parents.  Parents and local partial
   derivatives are stored in Bigarrays (24 bytes per node) so that tapes
   with tens of millions of nodes — e.g. an FT class-S inverse 3-D FFT —
   fit comfortably in memory and put no pressure on the OCaml GC. *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable n : int;
  mutable lhs : i32; (* parent index, or -1 for none *)
  mutable rhs : i32;
  mutable dlhs : f64; (* d node / d lhs *)
  mutable drhs : f64;
}

let alloc_i32 n : i32 = Bigarray.(Array1.create int32 c_layout n)
let alloc_f64 n : f64 = Bigarray.(Array1.create float64 c_layout n)

let create ?(capacity = 1024) () =
  let capacity = Stdlib.max capacity 16 in
  {
    n = 0;
    lhs = alloc_i32 capacity;
    rhs = alloc_i32 capacity;
    dlhs = alloc_f64 capacity;
    drhs = alloc_f64 capacity;
  }

let length t = t.n
let capacity t = Bigarray.Array1.dim t.lhs

(* Bytes of tape storage currently reserved (diagnostic). *)
let reserved_bytes t = capacity t * 24

let clear t = t.n <- 0

let grow t =
  let old = capacity t in
  let cap = old * 2 in
  let lhs = alloc_i32 cap and rhs = alloc_i32 cap in
  let dlhs = alloc_f64 cap and drhs = alloc_f64 cap in
  Bigarray.Array1.(blit t.lhs (sub lhs 0 old));
  Bigarray.Array1.(blit t.rhs (sub rhs 0 old));
  Bigarray.Array1.(blit t.dlhs (sub dlhs 0 old));
  Bigarray.Array1.(blit t.drhs (sub drhs 0 old));
  t.lhs <- lhs;
  t.rhs <- rhs;
  t.dlhs <- dlhs;
  t.drhs <- drhs

(* Raw node append; returns the new node id. *)
let push t l dl r dr =
  if t.n = capacity t then grow t;
  let i = t.n in
  t.lhs.{i} <- Int32.of_int l;
  t.rhs.{i} <- Int32.of_int r;
  t.dlhs.{i} <- dl;
  t.drhs.{i} <- dr;
  t.n <- i + 1;
  i

(* An input (independent) variable: a parentless node. *)
let fresh_var t = push t (-1) 0. (-1) 0.

let push1 t parent partial = push t parent partial (-1) 0.
let push2 t l dl r dr = push t l dl r dr

(* Adjoint accumulator produced by a backward sweep. *)
type adjoints = { adj : f64; upto : int }

(* Reverse sweep from [output].  One pass computes d output / d node for
   every node at or below [output] — this is what lets the analysis
   scrutinize every element of every checkpoint variable at once. *)
let backward t ~output =
  if output < 0 || output >= t.n then
    invalid_arg "Tape.backward: output is not a tape node";
  let adj = alloc_f64 (output + 1) in
  Bigarray.Array1.fill adj 0.;
  adj.{output} <- 1.;
  for i = output downto 0 do
    let a = adj.{i} in
    if a <> 0. then begin
      let l = Int32.to_int t.lhs.{i} in
      if l >= 0 then adj.{l} <- adj.{l} +. (a *. t.dlhs.{i});
      let r = Int32.to_int t.rhs.{i} in
      if r >= 0 then adj.{r} <- adj.{r} +. (a *. t.drhs.{i})
    end
  done;
  { adj; upto = output }

(* Adjoint of a node; nodes above the output (or constants, id = -1)
   cannot influence it, so their adjoint is 0. *)
let adjoint g id = if id < 0 || id > g.upto then 0. else g.adj.{id}
