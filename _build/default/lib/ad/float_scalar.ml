(* Plain-float instantiation of {!Scalar.S}: zero-overhead production mode. *)

type t = float

let zero = 0.
let one = 1.
let of_float x = x
let of_int = float_of_int
let to_float x = x

let ( +. ) = Stdlib.( +. )
let ( -. ) = Stdlib.( -. )
let ( *. ) = Stdlib.( *. )
let ( /. ) = Stdlib.( /. )
let ( ~-. ) = Stdlib.( ~-. )

let sqrt = Stdlib.sqrt
let exp = Stdlib.exp
let log = Stdlib.log
let sin = Stdlib.sin
let cos = Stdlib.cos
let abs = Stdlib.abs_float
let max = Stdlib.Float.max
let min = Stdlib.Float.min

let compare = Stdlib.compare
let equal (a : float) b = a = b
let ( < ) (a : float) b = a < b
let ( <= ) (a : float) b = a <= b
let ( > ) (a : float) b = a > b
let ( >= ) (a : float) b = a >= b
