(** Dependence-only ("activity") analysis mode.

    Drop-in alternative to {!Reverse} with the same lift/run/backward
    protocol, but tracking only data-flow edges.  An element is {e active}
    when the output is reachable from it in the dependence graph — an
    over-approximation of criticality (a reachable element can still have
    an exactly-zero derivative). *)

type t = { id : int; v : float }

val const : float -> t
val value : t -> float
val node_id : t -> int
val is_const : t -> bool
val var : Dep_tape.t -> float -> t
val lift : Dep_tape.t -> t -> t

module Scalar_of (_ : sig
  val tape : Dep_tape.t
end) : Scalar.S with type t = t

type result

val backward : Dep_tape.t -> t -> result

(** Does the output depend on this value? *)
val active : result -> t -> bool
