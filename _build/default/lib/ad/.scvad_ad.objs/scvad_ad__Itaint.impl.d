lib/ad/itaint.ml: Array Dep_tape
