lib/ad/float_scalar.ml: Stdlib
