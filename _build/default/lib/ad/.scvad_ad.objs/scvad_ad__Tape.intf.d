lib/ad/tape.mli:
