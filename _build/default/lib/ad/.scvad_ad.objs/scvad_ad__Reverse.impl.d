lib/ad/reverse.ml: Scalar Stdlib Tape
