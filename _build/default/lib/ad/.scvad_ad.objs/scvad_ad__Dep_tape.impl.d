lib/ad/dep_tape.ml: Array1 Bigarray Bytes Char Int32 Stdlib
