lib/ad/dual.ml: Scalar Stdlib
