lib/ad/scalar.mli:
