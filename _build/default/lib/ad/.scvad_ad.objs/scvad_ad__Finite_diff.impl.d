lib/ad/finite_diff.ml: Array
