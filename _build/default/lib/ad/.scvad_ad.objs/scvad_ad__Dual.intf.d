lib/ad/dual.mli: Scalar
