lib/ad/tape.ml: Array1 Bigarray Int32 Stdlib
