lib/ad/float_scalar.mli: Scalar
