lib/ad/dep_tape.mli:
