lib/ad/itaint.mli: Dep_tape
