lib/ad/activity.ml: Dep_tape Scalar Stdlib
