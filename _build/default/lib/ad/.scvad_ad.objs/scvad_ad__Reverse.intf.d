lib/ad/reverse.mli: Scalar Tape
