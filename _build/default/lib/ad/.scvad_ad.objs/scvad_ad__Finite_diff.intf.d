lib/ad/finite_diff.mli:
