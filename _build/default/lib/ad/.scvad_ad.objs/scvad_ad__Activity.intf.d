lib/ad/activity.mli: Dep_tape Scalar
