(** Generic scalar signature.

    Every numerical kernel in this repository is a functor over [Scalar.S],
    so the same kernel source runs in three modes:

    - plain floats ({!Float_scalar}) for production execution,
    - reverse-mode AD values ({!Reverse}) for one-pass criticality analysis,
    - forward-mode duals ({!Dual}) for per-element probing.

    Scalar arithmetic uses the [+.]/[-.]/[*.]/[/.] spelling so that integer
    index arithmetic inside kernels keeps the ordinary [+] operators even
    when the signature is opened. *)

module type S = sig
  type t

  val zero : t
  val one : t

  val of_float : float -> t

  val of_int : int -> t

  (** Primal (value) part. For AD scalars this drops the derivative
      information; kernels use it for branching and I/O only. *)
  val to_float : t -> float

  val ( +. ) : t -> t -> t
  val ( -. ) : t -> t -> t
  val ( *. ) : t -> t -> t
  val ( /. ) : t -> t -> t

  (** Unary negation. *)
  val ( ~-. ) : t -> t

  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val sin : t -> t
  val cos : t -> t
  val abs : t -> t

  (** [max]/[min] select by primal value; the derivative follows the
      selected argument (the usual AD convention, also Enzyme's). *)
  val max : t -> t -> t

  val min : t -> t -> t

  (** Comparisons are on primal values. An AD-mode kernel therefore takes
      the same control-flow path as the float-mode kernel. *)
  val compare : t -> t -> int

  val equal : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
