(** Central-difference numerical derivatives.

    Independent oracle for the AD engines: shares no code with the tapes,
    so agreement (within truncation error) is strong evidence of
    correctness. *)

val default_step : float

(** [derivative ?h f x i] ≈ ∂f/∂x{_i} at [x] by central difference with
    step [h].  [x] is mutated during evaluation and restored before
    returning. *)
val derivative : ?h:float -> (float array -> float) -> float array -> int -> float

(** Full gradient, one {!derivative} call per coordinate. *)
val gradient : ?h:float -> (float array -> float) -> float array -> float array
