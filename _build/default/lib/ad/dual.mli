(** Forward-mode AD with dual numbers.

    [var x] seeds a tangent of 1; after running the program, {!tangent} of
    the output is the derivative with respect to that single seeded input.
    Complements {!Reverse}: one run per input instead of one sweep for all
    inputs. *)

type t = { v : float; d : float }

val const : float -> t

(** Seeded input: tangent 1. *)
val var : float -> t

val value : t -> float

(** Derivative part. *)
val tangent : t -> float

module Scalar : Scalar.S with type t = t
