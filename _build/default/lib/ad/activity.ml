(* Dependence-only ("activity") analysis for float programs.

   Same front end as {!Reverse} but the tape stores edges only: a value is
   active if the output is dependence-reachable from it, regardless of the
   partial derivative's value.  Cheaper (8 vs 24 bytes/node, no float
   work) and an over-approximation of the paper's zero-derivative
   criterion: [x *. zero] keeps [x] active here but has gradient 0 under
   {!Reverse}.  The difference is measured by the ablation bench. *)

type t = { id : int; v : float }

let const v = { id = -1; v }
let value x = x.v
let node_id x = x.id
let is_const x = x.id < 0
let var tape v = { id = Dep_tape.fresh_var tape; v }
let lift tape x = if is_const x then var tape x.v else x

module Scalar_of (T : sig
  val tape : Dep_tape.t
end) : Scalar.S with type t = t = struct
  type nonrec t = t

  let tape = T.tape
  let zero = const 0.
  let one = const 1.
  let of_float v = const v
  let of_int i = const (float_of_int i)
  let to_float x = x.v

  let node1 v a = { id = Dep_tape.push1 tape a.id; v }

  let node2 v a b =
    if a.id < 0 && b.id < 0 then const v
    else { id = Dep_tape.push2 tape a.id b.id; v }

  let ( +. ) a b = node2 (a.v +. b.v) a b
  let ( -. ) a b = node2 (a.v -. b.v) a b
  let ( *. ) a b = node2 (a.v *. b.v) a b
  let ( /. ) a b = node2 (a.v /. b.v) a b
  let ( ~-. ) a = if a.id < 0 then const (-.a.v) else node1 (-.a.v) a

  let unary f a = if a.id < 0 then const (f a.v) else node1 (f a.v) a

  let sqrt a = unary Stdlib.sqrt a
  let exp a = unary Stdlib.exp a
  let log a = unary Stdlib.log a
  let sin a = unary Stdlib.sin a
  let cos a = unary Stdlib.cos a
  let abs a = unary Stdlib.abs_float a
  let max a b = node2 (Stdlib.Float.max a.v b.v) a b
  let min a b = node2 (Stdlib.Float.min a.v b.v) a b
  let compare a b = Stdlib.compare a.v b.v
  let equal a b = a.v = b.v
  let ( < ) a b = a.v < b.v
  let ( <= ) a b = a.v <= b.v
  let ( > ) a b = a.v > b.v
  let ( >= ) a b = a.v >= b.v
end

type result = Dep_tape.reach option

let backward tape (output : t) =
  if is_const output then None
  else Some (Dep_tape.backward tape ~output:output.id)

let active r x =
  match r with None -> false | Some g -> Dep_tape.reachable g x.id
