(* Central finite differences: the derivative oracle used by the test
   suite to validate both AD engines against a method with no shared
   code. *)

let default_step = 1e-6

(* d f / d x.(i) by central difference; [x] is restored afterwards. *)
let derivative ?(h = default_step) (f : float array -> float)
    (x : float array) (i : int) =
  let saved = x.(i) in
  x.(i) <- saved +. h;
  let fp = f x in
  x.(i) <- saved -. h;
  let fm = f x in
  x.(i) <- saved;
  (fp -. fm) /. (2. *. h)

(* Full gradient, one central difference per coordinate. *)
let gradient ?h f x = Array.init (Array.length x) (fun i -> derivative ?h f x i)
