(* Criticality-driven checkpointing (paper §III-B, §IV-D).

   Bridges the analyzer and the checkpoint library: given a criticality
   report, [snapshot] packs only critical elements (plus the
   contiguous-region bounds, the paper's auxiliary file) and [restore]
   scatters them back, poisoning uncritical slots to prove they are never
   read.  Without a report the same entry points produce/consume full
   checkpoints — the paper's baseline. *)

open Scvad_ad
module F = Scvad_checkpoint.Ckpt_format
module Regions = Scvad_checkpoint.Regions

(* Regions lookup from an optional criticality report: [None] means
   checkpoint the variable in full. *)
let regions_for (report : Criticality.report option) name =
  match report with
  | None -> None
  | Some r -> (
      match Criticality.find_opt r name with
      | None -> None
      | Some v ->
          (* All-critical variables get a Full section: same bytes, no
             region metadata. *)
          if Criticality.uncritical v = 0 then None else Some v.Criticality.regions)

let flatten_float (v : Float_scalar.t Variable.t) =
  let n = Variable.elements v in
  let out = Array.make (n * v.Variable.spe) 0. in
  for e = 0 to n - 1 do
    for k = 0 to v.Variable.spe - 1 do
      out.((e * v.Variable.spe) + k) <- v.Variable.get e k
    done
  done;
  out

let flatten_int (v : Variable.int_t) =
  Array.init (Variable.int_elements v) v.Variable.iget

let float_section ?report (v : Float_scalar.t Variable.t) =
  let data = flatten_float v in
  let dims = Scvad_nd.Shape.dims v.Variable.shape in
  match regions_for report v.Variable.name with
  | None ->
      {
        F.name = v.Variable.name;
        dims;
        spe = v.Variable.spe;
        regions = None;
        payload = F.F64 data;
      }
  | Some regions ->
      {
        F.name = v.Variable.name;
        dims;
        spe = v.Variable.spe;
        regions = Some regions;
        payload = F.F64 (F.gather_f64 ~data ~spe:v.Variable.spe regions);
      }

let int_section ?report (v : Variable.int_t) =
  let data = flatten_int v in
  let dims = Scvad_nd.Shape.dims v.Variable.ishape in
  match regions_for report v.Variable.iname with
  | None ->
      { F.name = v.Variable.iname; dims; spe = 1; regions = None; payload = F.I64 data }
  | Some regions ->
      {
        F.name = v.Variable.iname;
        dims;
        spe = 1;
        regions = Some regions;
        payload = F.I64 (F.gather_i64 ~data ~spe:1 regions);
      }

(* Snapshot the live state of an application instance.  [report = None]
   → full checkpoint; otherwise prune by the report's regions. *)
let snapshot ?report ~app ~iteration
    ~(float_vars : Float_scalar.t Variable.t list)
    ~(int_vars : Variable.int_t list) () =
  {
    F.app;
    iteration;
    sections =
      List.map (float_section ?report) float_vars
      @ List.map (int_section ?report) int_vars;
  }

(* Restore a checkpoint into live state.  Variables present in the file
   are overwritten; uncritical slots of pruned sections receive poison.
   Returns the checkpointed iteration count. *)
let restore ?(poison = Scvad_checkpoint.Failure.Nan) (file : F.file)
    ~(float_vars : Float_scalar.t Variable.t list)
    ~(int_vars : Variable.int_t list) =
  let section name =
    match List.find_opt (fun s -> s.F.name = name) file.F.sections with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Pruned.restore: no section %S" name)
  in
  List.iter
    (fun (v : Float_scalar.t Variable.t) ->
      let s = section v.Variable.name in
      if F.element_count s <> Variable.elements v || s.F.spe <> v.Variable.spe
      then invalid_arg "Pruned.restore: shape mismatch";
      let full =
        F.scatter_f64 s ~poison:(Scvad_checkpoint.Failure.poison_value poison)
      in
      for e = 0 to Variable.elements v - 1 do
        for k = 0 to v.Variable.spe - 1 do
          v.Variable.set e k full.((e * v.Variable.spe) + k)
        done
      done)
    float_vars;
  List.iter
    (fun (v : Variable.int_t) ->
      let s = section v.Variable.iname in
      if F.element_count s <> Variable.int_elements v then
        invalid_arg "Pruned.restore: shape mismatch";
      let full =
        F.scatter_i64 s
          ~poison:(Scvad_checkpoint.Failure.int_poison_value poison)
      in
      Array.iteri (fun e x -> v.Variable.iset e x) full)
    int_vars;
  file.F.iteration

(* Storage accounting for Table III. *)
type storage = {
  payload_bytes : int; (* 8 bytes per stored scalar *)
  aux_bytes : int; (* region metadata (the auxiliary file) *)
  file_bytes : int; (* actual encoded file size *)
}

let storage_of_file (file : F.file) =
  let payload_bytes =
    List.fold_left (fun acc s -> acc + F.payload_bytes s) 0 file.F.sections
  in
  let aux_bytes =
    List.fold_left (fun acc s -> acc + F.aux_bytes s) 0 file.F.sections
  in
  { payload_bytes; aux_bytes; file_bytes = String.length (F.encode file) }
