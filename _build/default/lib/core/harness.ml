(* End-to-end checkpoint/restart harness (paper §IV-C).

   Protocol:
   1. golden run — uninterrupted, records the reference output;
   2. protected run — checkpoints every [every] iterations (pruned by a
      criticality report, or full) and crashes at a chosen iteration;
   3. restart — restores the latest checkpoint, poisons uncritical
      elements, finishes the run;
   4. verification — the restarted output must equal the golden output
      bit for bit (floats are compared exactly: a correct restart replays
      the identical instruction stream on the critical data).           *)

open Scvad_ad
module Failure_ = Scvad_checkpoint.Failure

type run_result = { output : float; iterations : int }

let golden_run ?niter (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  I.run state ~from:0 ~until:niter;
  { output = I.output state; iterations = niter }

(* Run with periodic checkpoints into [store]; raise
   [Failure_.Crash] at iteration [crash_at] if given.  Checkpoints are
   taken after each [every]-th iteration completes (and never for the
   final iteration, where the run is already done). *)
let run_with_checkpoints ?report ?crash_at ?niter ~store ~every
    (module A : App.S) =
  if every <= 0 then invalid_arg "Harness.run_with_checkpoints: every <= 0";
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  let checkpoint iteration =
    let file =
      Pruned.snapshot ?report ~app:A.name ~iteration
        ~float_vars:(I.float_vars state) ~int_vars:(I.int_vars state) ()
    in
    ignore (Scvad_checkpoint.Store.save ~sidecar_aux:true store file)
  in
  let rec go from =
    if from >= niter then { output = I.output state; iterations = niter }
    else begin
      let until = min niter (from + every) in
      (* The failure strikes while the segment containing [crash_at] is
         executing, i.e. before its checkpoint is taken. *)
      (match crash_at with
      | Some at when from <= at && at < until ->
          raise (Failure_.Crash { iteration = at })
      | Some _ | None -> ());
      I.run state ~from ~until;
      if until < niter then checkpoint until;
      go until
    end
  in
  go 0

(* Restore the newest checkpoint and finish the run. *)
let restart_from_latest ?(poison = Failure_.Nan) ?niter ~store
    (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  let module I = A.Make (Float_scalar) in
  match Scvad_checkpoint.Store.latest store with
  | None -> invalid_arg "Harness.restart_from_latest: empty store"
  | Some file ->
      let state = I.create () in
      let from =
        Pruned.restore ~poison file ~float_vars:(I.float_vars state)
          ~int_vars:(I.int_vars state)
      in
      I.run state ~from ~until:niter;
      { output = I.output state; iterations = niter }

(* Bitwise output equality — the verification oracle. *)
let verified ~golden ~restarted =
  Int64.bits_of_float golden.output = Int64.bits_of_float restarted.output

(* Silent-data-corruption probe: flip one bit of one element of one
   checkpoint variable at a checkpoint boundary and finish the run.
   The paper's criterion in executable form: an uncritical element must
   leave the output bit-identical; a critical one generally must not.
   Returns (golden, corrupted run, output changed?). *)
let corrupt_element_experiment ?niter ?(bit = 30) ~at_iter ~var ~element
    (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  if at_iter < 0 || at_iter >= niter then
    invalid_arg "Harness.corrupt_element_experiment: bad boundary";
  let golden = golden_run ~niter (module A : App.S) in
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  I.run state ~from:0 ~until:at_iter;
  let v =
    match
      List.find_opt
        (fun (v : Float_scalar.t Variable.t) -> v.Variable.name = var)
        (I.float_vars state)
    with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Harness.corrupt_element_experiment: no variable %S" var)
  in
  if element < 0 || element >= Variable.elements v then
    invalid_arg "Harness.corrupt_element_experiment: element out of range";
  v.Variable.set element 0 (Failure_.flip_bit (v.Variable.get element 0) ~bit);
  I.run state ~from:at_iter ~until:niter;
  let corrupted = { output = I.output state; iterations = niter } in
  (golden, corrupted, not (verified ~golden ~restarted:corrupted))

(* The full §IV-C experiment: golden run, crash halfway, pruned restart,
   verify.  Returns (golden, restarted, verified). *)
let crash_restart_experiment ?report ?(poison = Failure_.Nan) ?niter ~store
    ~every ~crash_at (module A : App.S) =
  Scvad_checkpoint.Store.wipe store;
  let golden = golden_run ?niter (module A : App.S) in
  (match
     run_with_checkpoints ?report ~crash_at ?niter ~store ~every
       (module A : App.S)
   with
  | _ -> failwith "crash_restart_experiment: the run did not crash"
  | exception Failure_.Crash _ -> ());
  let restarted = restart_from_latest ~poison ?niter ~store (module A : App.S) in
  (golden, restarted, verified ~golden ~restarted)
