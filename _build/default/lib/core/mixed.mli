(** Mixed-precision checkpointing — the paper's §VII future work.

    A plan splits each float variable by impact magnitude: high-impact
    elements stored in double precision, low-impact elements in single
    precision, uncritical elements dropped.  {!experiment} measures the
    restart output error of a given threshold and compares it with the
    first-order prediction Σ |g{_i}|·|x{_i} − fl32(x{_i})|. *)

open Scvad_ad

type plan = {
  name : string;
  high : Scvad_checkpoint.Regions.t;  (** double precision *)
  low : Scvad_checkpoint.Regions.t;  (** single precision *)
}

(** Section-name suffix of the single-precision companion. *)
val f32_suffix : string

val plan_of_impact : threshold:float -> Impact.var_impact -> plan
val plans_of_report : threshold:float -> Impact.report -> plan list
val plan_for : plan list -> string -> plan option

(** Round to IEEE single precision. *)
val to_f32 : float -> float

(** Mixed-precision snapshot: per planned variable an F64 section over
    the high-impact regions plus an F32 companion over the low-impact
    regions; unplanned variables and integers stay full. *)
val snapshot :
  plans:plan list ->
  app:string ->
  iteration:int ->
  float_vars:Float_scalar.t Variable.t list ->
  int_vars:Variable.int_t list ->
  unit ->
  Scvad_checkpoint.Ckpt_format.file

(** Restore: base section, then the F32 overlay; uncritical slots hold
    [poison].  Returns the checkpointed iteration. *)
val restore :
  ?poison:Scvad_checkpoint.Failure.poison ->
  Scvad_checkpoint.Ckpt_format.file ->
  float_vars:Float_scalar.t Variable.t list ->
  int_vars:Variable.int_t list ->
  int

type experiment = {
  threshold : float;
  golden_output : float;
  restarted_output : float;
  abs_error : float;  (** measured |golden − restarted| *)
  predicted_error : float;  (** first-order bound *)
  full_bytes : int;  (** all-double checkpoint payload *)
  mixed_bytes : int;  (** mixed-precision checkpoint payload *)
  low_elements : int;
  high_elements : int;
  dropped_elements : int;
}

(** Run the mixed-precision restart at boundary [at_iter] (default 1)
    with the given threshold; the impact window covers the whole
    remaining run. *)
val experiment :
  ?at_iter:int -> ?niter:int -> threshold:float -> (module App.S) -> experiment
