(** End-to-end checkpoint/restart harness (paper §IV-C).

    Golden run → protected run with periodic (optionally pruned)
    checkpoints and an injected crash → restart from the newest
    checkpoint with poisoned uncritical elements → bitwise output
    verification. *)

type run_result = { output : float; iterations : int }

(** Uninterrupted reference run. *)
val golden_run : ?niter:int -> (module App.S) -> run_result

(** Run with a checkpoint every [every] iterations saved into [store]
    (pruned when [report] is given).  If [crash_at] is inside a
    segment, that segment raises {!Scvad_checkpoint.Failure.Crash}
    before its checkpoint is taken. *)
val run_with_checkpoints :
  ?report:Criticality.report ->
  ?crash_at:int ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  every:int ->
  (module App.S) ->
  run_result

(** Restore the newest checkpoint and finish the run. *)
val restart_from_latest :
  ?poison:Scvad_checkpoint.Failure.poison ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  (module App.S) ->
  run_result

(** Bitwise equality of outputs — the verification oracle (a correct
    restart replays the identical instruction stream on the critical
    data). *)
val verified : golden:run_result -> restarted:run_result -> bool

(** Silent-data-corruption probe: flip bit [bit] (default 30) of one
    element of variable [var] at boundary [at_iter] and finish the run.
    Returns (golden, corrupted run, output changed?).  The executable
    form of the paper's criterion: corrupting an uncritical element
    must not change the output. *)
val corrupt_element_experiment :
  ?niter:int ->
  ?bit:int ->
  at_iter:int ->
  var:string ->
  element:int ->
  (module App.S) ->
  run_result * run_result * bool

(** The full §IV-C experiment; returns (golden, restarted, verified).
    Wipes [store] first; fails if the run did not crash. *)
val crash_restart_experiment :
  ?report:Criticality.report ->
  ?poison:Scvad_checkpoint.Failure.poison ->
  ?niter:int ->
  store:Scvad_checkpoint.Store.t ->
  every:int ->
  crash_at:int ->
  (module App.S) ->
  run_result * run_result * bool
