(** Emitters for the paper's three tables. *)

(** C-like declarations of an application's checkpoint variables. *)
val declarations : (module App.S) -> string list

(** Table I: variables necessary for checkpointing. *)
val table1 : (module App.S) list -> string

(** Table II rows (float variables) of one report. *)
val table2_rows : Criticality.report -> string list list

(** Table II: uncritical / total / rate per variable. *)
val table2 : Criticality.report list -> string

type table3_row = {
  app : string;
  original_bytes : int;  (** full checkpoint payload *)
  optimized_bytes : int;  (** pruned checkpoint payload *)
  aux_bytes : int;  (** the auxiliary (region bounds) file *)
}

(** 1 - optimized/original.  Matches the paper's accounting: checkpoint
    payloads only; the auxiliary file is a separate artifact. *)
val saved_rate : table3_row -> float

(** Snapshot one application full and pruned at [at_iter] (default 1)
    and measure both. *)
val table3_row :
  ?at_iter:int -> (module App.S) -> Criticality.report -> table3_row

(** Table III: checkpointing storage. *)
val table3 : table3_row list -> string
