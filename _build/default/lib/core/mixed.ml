(* Mixed-precision checkpointing — the paper's §VII future work, built
   end to end.

   A plan splits each float variable by impact magnitude: high-impact
   elements are stored in double precision, low-impact elements in
   single precision, uncritical elements not at all.  The restart
   experiment measures the output perturbation this causes and compares
   it with the first-order prediction sum |g_i| * |x_i - fl32(x_i)|. *)

open Scvad_ad
module F = Scvad_checkpoint.Ckpt_format
module Regions = Scvad_checkpoint.Regions

type plan = {
  name : string;
  high : Regions.t; (* double precision *)
  low : Regions.t; (* single precision *)
}

(* Suffix of the companion single-precision section. *)
let f32_suffix = ".f32"

let plan_of_impact ~threshold (v : Impact.var_impact) =
  let classes = Impact.classify v ~threshold in
  {
    name = v.Impact.name;
    high = Regions.of_mask (Array.map (fun c -> c = Impact.High_impact) classes);
    low = Regions.of_mask (Array.map (fun c -> c = Impact.Low_impact) classes);
  }

let plans_of_report ~threshold (r : Impact.report) =
  List.map (plan_of_impact ~threshold) r.Impact.vars

let plan_for plans name = List.find_opt (fun p -> p.name = name) plans

(* Round to IEEE single precision (what an F32 payload stores). *)
let to_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let flatten (v : Float_scalar.t Variable.t) =
  let n = Variable.elements v in
  Array.init (n * v.Variable.spe) (fun i ->
      v.Variable.get (i / v.Variable.spe) (i mod v.Variable.spe))

(* Mixed-precision snapshot: per planned variable, a double-precision
   section over the high-impact regions plus a single-precision
   companion over the low-impact regions.  Unplanned variables and
   integers stay full. *)
let snapshot ~plans ~app ~iteration
    ~(float_vars : Float_scalar.t Variable.t list)
    ~(int_vars : Variable.int_t list) () =
  let float_sections =
    List.concat_map
      (fun (v : Float_scalar.t Variable.t) ->
        let dims = Scvad_nd.Shape.dims v.Variable.shape in
        let data = flatten v in
        match plan_for plans v.Variable.name with
        | None ->
            [ { F.name = v.Variable.name; dims; spe = v.Variable.spe;
                regions = None; payload = F.F64 data } ]
        | Some p ->
            [ { F.name = v.Variable.name;
                dims;
                spe = v.Variable.spe;
                regions = Some p.high;
                payload = F.F64 (F.gather_f64 ~data ~spe:v.Variable.spe p.high) };
              { F.name = v.Variable.name ^ f32_suffix;
                dims;
                spe = v.Variable.spe;
                regions = Some p.low;
                (* Round now, so the in-memory payload already carries
                   single precision and encoding is lossless. *)
                payload =
                  F.F32
                    (Array.map to_f32
                       (F.gather_f64 ~data ~spe:v.Variable.spe p.low)) } ])
      float_vars
  in
  let int_sections =
    List.map
      (fun (v : Variable.int_t) ->
        {
          F.name = v.Variable.iname;
          dims = Scvad_nd.Shape.dims v.Variable.ishape;
          spe = 1;
          regions = None;
          payload = F.I64 (Array.init (Variable.int_elements v) v.Variable.iget);
        })
      int_vars
  in
  { F.app; iteration; sections = float_sections @ int_sections }

(* Restore: scatter the double-precision base section, then overlay the
   single-precision companion; remaining (uncritical) slots hold
   poison. *)
let restore ?(poison = Scvad_checkpoint.Failure.Nan) (file : F.file)
    ~(float_vars : Float_scalar.t Variable.t list)
    ~(int_vars : Variable.int_t list) =
  let section name = List.find_opt (fun s -> s.F.name = name) file.F.sections in
  let require name =
    match section name with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Mixed.restore: no section %S" name)
  in
  List.iter
    (fun (v : Float_scalar.t Variable.t) ->
      let base = require v.Variable.name in
      if F.element_count base <> Variable.elements v || base.F.spe <> v.Variable.spe
      then invalid_arg "Mixed.restore: shape mismatch";
      let full =
        F.scatter_f64 base
          ~poison:(Scvad_checkpoint.Failure.poison_value poison)
      in
      (match section (v.Variable.name ^ f32_suffix) with
      | None -> ()
      | Some low -> (
          match (low.F.payload, low.F.regions) with
          | F.F32 packed, Some regions ->
              let pos = ref 0 in
              Regions.iter_elements regions (fun e ->
                  for k = 0 to v.Variable.spe - 1 do
                    full.((e * v.Variable.spe) + k) <- packed.(!pos);
                    incr pos
                  done)
          | _ -> invalid_arg "Mixed.restore: malformed f32 companion"));
      for e = 0 to Variable.elements v - 1 do
        for k = 0 to v.Variable.spe - 1 do
          v.Variable.set e k full.((e * v.Variable.spe) + k)
        done
      done)
    float_vars;
  List.iter
    (fun (v : Variable.int_t) ->
      let s = require v.Variable.iname in
      let full =
        F.scatter_i64 s ~poison:(Scvad_checkpoint.Failure.int_poison_value poison)
      in
      Array.iteri (fun e x -> v.Variable.iset e x) full)
    int_vars;
  file.F.iteration

(* ------------------------------------------------------------------ *)
(* The threshold experiment                                            *)
(* ------------------------------------------------------------------ *)

type experiment = {
  threshold : float;
  golden_output : float;
  restarted_output : float;
  abs_error : float; (* measured |golden - restarted| *)
  predicted_error : float; (* first-order bound sum |g_i| |x_i - fl32 x_i| *)
  full_bytes : int; (* all-double checkpoint payload *)
  mixed_bytes : int; (* mixed-precision checkpoint payload *)
  low_elements : int;
  high_elements : int;
  dropped_elements : int;
}

(* Run the mixed-precision restart at checkpoint boundary [at_iter]
   with the given impact threshold and measure the output error. *)
let experiment ?(at_iter = 1) ?niter ~threshold (module A : App.S) =
  let niter = Option.value niter ~default:A.default_niter in
  (* The impact window covers the whole remaining run, so the
     first-order prediction accounts for error growth across every
     iteration a restart would replay. *)
  let impact = Analyzer.analyze_impact ~at_iter ~niter (module A) in
  let plans = plans_of_report ~threshold impact in
  let module I = A.Make (Float_scalar) in
  (* Golden. *)
  let golden =
    let st = I.create () in
    I.run st ~from:0 ~until:niter;
    I.output st
  in
  (* Snapshot at the boundary. *)
  let st = I.create () in
  I.run st ~from:0 ~until:at_iter;
  let file =
    snapshot ~plans ~app:A.name ~iteration:at_iter
      ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  (* First-order error prediction over the low-impact elements. *)
  let predicted = ref 0. in
  List.iter
    (fun (v : Float_scalar.t Variable.t) ->
      match
        (plan_for plans v.Variable.name, Impact.find_opt impact v.Variable.name)
      with
      | Some p, Some vi ->
          Regions.iter_elements p.low (fun e ->
              for k = 0 to v.Variable.spe - 1 do
                let x = v.Variable.get e k in
                predicted :=
                  !predicted
                  +. (vi.Impact.magnitude.(e) *. Float.abs (x -. to_f32 x))
              done)
      | _ -> ())
    (I.float_vars st);
  (* Restore into a fresh state and finish. *)
  let st2 = I.create () in
  let from =
    restore ~poison:Scvad_checkpoint.Failure.Nan file
      ~float_vars:(I.float_vars st2) ~int_vars:(I.int_vars st2)
  in
  I.run st2 ~from ~until:niter;
  let restarted = I.output st2 in
  (* Storage accounting. *)
  let full_file =
    Pruned.snapshot ~app:A.name ~iteration:at_iter
      ~float_vars:(I.float_vars st) ~int_vars:(I.int_vars st) ()
  in
  let low, high, dropped =
    List.fold_left
      (fun (l, h, d) p ->
        let total =
          match Impact.find_opt impact p.name with
          | Some vi -> Array.length vi.Impact.magnitude
          | None -> 0
        in
        ( l + Regions.cardinal p.low,
          h + Regions.cardinal p.high,
          d + total - Regions.cardinal p.low - Regions.cardinal p.high ))
      (0, 0, 0) plans
  in
  {
    threshold;
    golden_output = golden;
    restarted_output = restarted;
    abs_error = Float.abs (golden -. restarted);
    predicted_error = !predicted;
    full_bytes = (Pruned.storage_of_file full_file).Pruned.payload_bytes;
    mixed_bytes = (Pruned.storage_of_file file).Pruned.payload_bytes;
    low_elements = low;
    high_elements = high;
    dropped_elements = dropped;
  }
