(** Impact analysis: per-element derivative magnitudes (paper §VII).

    Where criticality asks "is d output / d element zero?", impact
    keeps |d output / d element| and classifies elements against a
    threshold — the input of mixed-precision checkpointing. *)

type var_impact = {
  name : string;
  shape : Scvad_nd.Shape.t;
  spe : int;
  magnitude : float array;  (** per element: max |d out / d slot| *)
}

type report = {
  app : string;
  at_iteration : int;
  analyzed_until : int;
  vars : var_impact list;
}

(** Raises if the magnitude length and shape disagree. *)
val of_magnitudes :
  name:string ->
  shape:Scvad_nd.Shape.t ->
  spe:int ->
  float array ->
  var_impact

val find : report -> string -> var_impact
val find_opt : report -> string -> var_impact option

(** magnitude ≠ 0 — impact generalizes criticality. *)
val to_criticality_mask : var_impact -> bool array

val max_magnitude : var_impact -> float

(** Smallest nonzero magnitude ([infinity] if none). *)
val min_nonzero : var_impact -> float

(** p-th percentile (0..100) of the nonzero magnitudes. *)
val percentile : var_impact -> p:float -> float

type clazz = Uncritical | Low_impact | High_impact

val classify : var_impact -> threshold:float -> clazz array

(** (uncritical, low, high). *)
val class_counts : clazz array -> int * int * int

(** (decade, count) of nonzero magnitudes, ascending. *)
val log_histogram : var_impact -> (int * int) list
