(* Incremental checkpointing baseline, and its combination with
   criticality pruning.

   The paper's related work cites page-based incremental checkpointing
   (Vasavada et al.): save only what changed since the previous
   checkpoint.  This module implements the idea at element granularity
   so it composes with the paper's pruning:

     full        every element, every time           (baseline)
     pruned      critical elements, every time       (the paper)
     incremental changed elements since last time    (related work)
     combined    changed AND critical elements       (both)

   A delta checkpoint is an ordinary pruned section whose regions are
   the changed (optionally also critical) elements; restore starts from
   poison and overlays base + deltas in order, so a slot that no file
   covers — an uncritical element — stays poisoned, preserving the
   §IV-C validation property. *)

open Scvad_ad
module F = Scvad_checkpoint.Ckpt_format
module Regions = Scvad_checkpoint.Regions

type mode = Incremental_only | Combined_with of Criticality.report

(* Last-checkpointed scalars per variable name. *)
type tracker = {
  floats : (string, float array) Hashtbl.t;
  ints : (string, int array) Hashtbl.t;
}

let create_tracker () = { floats = Hashtbl.create 8; ints = Hashtbl.create 8 }

let flatten_float (v : Float_scalar.t Variable.t) =
  let n = Variable.elements v in
  Array.init (n * v.Variable.spe) (fun i ->
      v.Variable.get (i / v.Variable.spe) (i mod v.Variable.spe))

(* Per-element change mask vs the last checkpointed values (bitwise
   comparison: what a dirty-tracking mechanism would see). *)
let changed_mask ~spe ~(last : float array) ~(now : float array) =
  Array.init (Array.length now / spe) (fun e ->
      let rec any k =
        k < spe
        && (Int64.bits_of_float now.((e * spe) + k)
            <> Int64.bits_of_float last.((e * spe) + k)
           || any (k + 1))
      in
      any 0)

let criticality_regions report name =
  match Criticality.find_opt report name with
  | Some v -> Some v.Criticality.regions
  | None -> None

let intersect_masks a b = Array.map2 ( && ) a b

(* Snapshot: the first call for a variable produces its base (full or
   pruned); later calls produce deltas.  The tracker always records the
   exact values this checkpoint represents. *)
let snapshot tracker ~mode ~app ~iteration
    ~(float_vars : Float_scalar.t Variable.t list)
    ~(int_vars : Variable.int_t list) () =
  let critical_mask name total =
    match mode with
    | Incremental_only -> Array.make total true
    | Combined_with report -> (
        match criticality_regions report name with
        | Some regions -> Regions.to_mask ~total regions
        | None -> Array.make total true)
  in
  let float_sections =
    List.map
      (fun (v : Float_scalar.t Variable.t) ->
        let name = v.Variable.name in
        let dims = Scvad_nd.Shape.dims v.Variable.shape in
        let now = flatten_float v in
        let total = Variable.elements v in
        let mask =
          match Hashtbl.find_opt tracker.floats name with
          | None -> critical_mask name total (* base checkpoint *)
          | Some last ->
              intersect_masks
                (changed_mask ~spe:v.Variable.spe ~last ~now)
                (critical_mask name total)
        in
        Hashtbl.replace tracker.floats name now;
        let regions = Regions.of_mask mask in
        {
          F.name;
          dims;
          spe = v.Variable.spe;
          regions = Some regions;
          payload = F.F64 (F.gather_f64 ~data:now ~spe:v.Variable.spe regions);
        })
      float_vars
  in
  let int_sections =
    List.map
      (fun (v : Variable.int_t) ->
        let name = v.Variable.iname in
        let now = Array.init (Variable.int_elements v) v.Variable.iget in
        let mask =
          match Hashtbl.find_opt tracker.ints name with
          | None -> Array.make (Array.length now) true
          | Some last -> Array.map2 ( <> ) last now
        in
        Hashtbl.replace tracker.ints name now;
        let regions = Regions.of_mask mask in
        {
          F.name;
          dims = Scvad_nd.Shape.dims v.Variable.ishape;
          spe = 1;
          regions = Some regions;
          payload = F.I64 (F.gather_i64 ~data:now ~spe:1 regions);
        })
      int_vars
  in
  { F.app; iteration; sections = float_sections @ int_sections }

(* Overlay one section's covered elements onto a scalar buffer. *)
let overlay_f64 (s : F.section) (buf : float array) =
  match (s.F.payload, s.F.regions) with
  | F.F64 packed, Some regions ->
      let pos = ref 0 in
      Regions.iter_elements regions (fun e ->
          for k = 0 to s.F.spe - 1 do
            buf.((e * s.F.spe) + k) <- packed.(!pos);
            incr pos
          done)
  | F.F64 packed, None -> Array.blit packed 0 buf 0 (Array.length packed)
  | (F.I64 _ | F.F32 _), _ -> invalid_arg "Incremental.overlay_f64"

let overlay_i64 (s : F.section) (buf : int array) =
  match (s.F.payload, s.F.regions) with
  | F.I64 packed, Some regions ->
      let pos = ref 0 in
      Regions.iter_elements regions (fun e ->
          buf.(e) <- packed.(!pos);
          incr pos)
  | F.I64 packed, None -> Array.blit packed 0 buf 0 (Array.length packed)
  | (F.F64 _ | F.F32 _), _ -> invalid_arg "Incremental.overlay_i64"

(* Restore from the base + delta chain, oldest first.  Slots no file
   covers (uncritical under Combined_with) stay poisoned.  Returns the
   newest file's iteration. *)
let restore ?(poison = Scvad_checkpoint.Failure.Nan) ~(files : F.file list)
    ~(float_vars : Float_scalar.t Variable.t list)
    ~(int_vars : Variable.int_t list) () =
  match files with
  | [] -> invalid_arg "Incremental.restore: no files"
  | _ ->
      List.iter
        (fun (v : Float_scalar.t Variable.t) ->
          let total = Variable.elements v * v.Variable.spe in
          let buf =
            Array.make total (Scvad_checkpoint.Failure.poison_value poison)
          in
          List.iter
            (fun (file : F.file) ->
              match
                List.find_opt
                  (fun s -> s.F.name = v.Variable.name)
                  file.F.sections
              with
              | Some s -> overlay_f64 s buf
              | None -> ())
            files;
          for e = 0 to Variable.elements v - 1 do
            for k = 0 to v.Variable.spe - 1 do
              v.Variable.set e k buf.((e * v.Variable.spe) + k)
            done
          done)
        float_vars;
      List.iter
        (fun (v : Variable.int_t) ->
          let buf =
            Array.make (Variable.int_elements v)
              (Scvad_checkpoint.Failure.int_poison_value poison)
          in
          List.iter
            (fun (file : F.file) ->
              match
                List.find_opt (fun s -> s.F.name = v.Variable.iname) file.F.sections
              with
              | Some s -> overlay_i64 s buf
              | None -> ())
            files;
          Array.iteri (fun e x -> v.Variable.iset e x) buf)
        int_vars;
      (List.nth files (List.length files - 1)).F.iteration

(* ------------------------------------------------------------------ *)
(* Storage comparison across policies                                  *)
(* ------------------------------------------------------------------ *)

type policy_bytes = {
  full : int list; (* payload bytes per checkpoint *)
  pruned : int list;
  incremental : int list;
  combined : int list;
}

(* Run [checkpoints] checkpoints (one per iteration after the first
   [warmup]) under all four policies and collect per-checkpoint payload
   bytes. *)
let storage_comparison ?(warmup = 1) ~checkpoints (module A : App.S)
    (report : Criticality.report) =
  let module I = A.Make (Float_scalar) in
  let st = I.create () in
  I.run st ~from:0 ~until:warmup;
  let inc = create_tracker () and comb = create_tracker () in
  let bytes file = (Pruned.storage_of_file file).Pruned.payload_bytes in
  let step_data i =
    let fv = I.float_vars st and iv = I.int_vars st in
    let full =
      bytes (Pruned.snapshot ~app:A.name ~iteration:i ~float_vars:fv ~int_vars:iv ())
    in
    let pruned =
      bytes
        (Pruned.snapshot ~report ~app:A.name ~iteration:i ~float_vars:fv
           ~int_vars:iv ())
    in
    let incremental =
      bytes
        (snapshot inc ~mode:Incremental_only ~app:A.name ~iteration:i
           ~float_vars:fv ~int_vars:iv ())
    in
    let combined =
      bytes
        (snapshot comb ~mode:(Combined_with report) ~app:A.name ~iteration:i
           ~float_vars:fv ~int_vars:iv ())
    in
    (full, pruned, incremental, combined)
  in
  let rows =
    List.init checkpoints (fun k ->
        if k > 0 then I.run st ~from:(warmup + k - 1) ~until:(warmup + k);
        step_data (warmup + k))
  in
  {
    full = List.map (fun (a, _, _, _) -> a) rows;
    pruned = List.map (fun (_, b, _, _) -> b) rows;
    incremental = List.map (fun (_, _, c, _) -> c) rows;
    combined = List.map (fun (_, _, _, d) -> d) rows;
  }
