lib/core/criticality.mli: Scvad_checkpoint Scvad_nd
