lib/core/analyzer.ml: Activity App Array Criticality Dep_tape Dual Float Impact List Option Reverse Scvad_ad Scvad_nd Tape Variable
