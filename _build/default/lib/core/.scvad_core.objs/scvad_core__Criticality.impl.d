lib/core/criticality.ml: Array List Scvad_checkpoint Scvad_nd
