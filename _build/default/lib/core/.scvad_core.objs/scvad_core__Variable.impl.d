lib/core/variable.ml: Array List Printf Scvad_nd String
