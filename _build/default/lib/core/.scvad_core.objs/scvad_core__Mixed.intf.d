lib/core/mixed.mli: App Float_scalar Impact Scvad_ad Scvad_checkpoint Variable
