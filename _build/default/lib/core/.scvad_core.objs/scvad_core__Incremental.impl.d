lib/core/incremental.ml: App Array Criticality Float_scalar Hashtbl Int64 List Pruned Scvad_ad Scvad_checkpoint Scvad_nd Variable
