lib/core/app.mli: Scvad_ad Variable
