lib/core/report.mli: App Criticality
