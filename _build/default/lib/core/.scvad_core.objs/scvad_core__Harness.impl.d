lib/core/harness.ml: App Float_scalar Int64 List Option Printf Pruned Scvad_ad Scvad_checkpoint Variable
