lib/core/variable.mli: Scvad_nd
