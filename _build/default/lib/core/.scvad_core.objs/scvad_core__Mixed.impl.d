lib/core/mixed.ml: Analyzer App Array Float Float_scalar Impact Int32 List Option Printf Pruned Scvad_ad Scvad_checkpoint Scvad_nd Variable
