lib/core/impact.mli: Scvad_nd
