lib/core/pruned.ml: Array Criticality Float_scalar List Printf Scvad_ad Scvad_checkpoint Scvad_nd String Variable
