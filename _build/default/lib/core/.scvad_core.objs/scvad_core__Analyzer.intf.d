lib/core/analyzer.mli: App Criticality Impact
