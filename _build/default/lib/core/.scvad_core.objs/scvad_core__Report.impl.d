lib/core/report.ml: App Criticality Float_scalar List Printf Pruned Scvad_ad String Variable
