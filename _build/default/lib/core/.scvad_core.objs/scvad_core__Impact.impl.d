lib/core/impact.ml: Array Float Hashtbl List Option Scvad_nd
