lib/core/pruned.mli: Criticality Float_scalar Scvad_ad Scvad_checkpoint Variable
