lib/core/incremental.mli: App Criticality Float_scalar Scvad_ad Scvad_checkpoint Variable
