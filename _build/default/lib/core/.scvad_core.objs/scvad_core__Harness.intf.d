lib/core/harness.mli: App Criticality Scvad_checkpoint
