(** Criticality-driven checkpointing (paper §III-B).

    Bridges the analyzer and the checkpoint library: snapshots pack
    only critical elements (plus the contiguous-region bounds — the
    paper's auxiliary file); restores scatter them back and poison the
    uncritical slots.  Without a report, the same entry points handle
    full checkpoints. *)

open Scvad_ad

(** Snapshot the live state of an application instance.
    [report = None] ⇒ full checkpoint; all-critical variables are
    stored as full sections either way (same bytes, no metadata). *)
val snapshot :
  ?report:Criticality.report ->
  app:string ->
  iteration:int ->
  float_vars:Float_scalar.t Variable.t list ->
  int_vars:Variable.int_t list ->
  unit ->
  Scvad_checkpoint.Ckpt_format.file

(** Restore a checkpoint into live state; uncritical slots of pruned
    sections receive [poison] (default NaN — loud if ever read).
    Returns the checkpointed iteration count.  Raises
    [Invalid_argument] on a name/shape mismatch. *)
val restore :
  ?poison:Scvad_checkpoint.Failure.poison ->
  Scvad_checkpoint.Ckpt_format.file ->
  float_vars:Float_scalar.t Variable.t list ->
  int_vars:Variable.int_t list ->
  int

(** Storage accounting for Table III. *)
type storage = {
  payload_bytes : int;  (** 8 bytes per stored scalar *)
  aux_bytes : int;  (** region metadata (the auxiliary file) *)
  file_bytes : int;  (** actual encoded size *)
}

val storage_of_file : Scvad_checkpoint.Ckpt_format.file -> storage
