(* Emitters for the paper's three tables.

   Table I  — variables necessary for checkpointing (the registry);
   Table II — uncritical / total / rate per variable;
   Table III — checkpoint storage, original vs optimized.               *)

open Scvad_ad

let buf_table rows =
  (* Simple column alignment over a list of string rows. *)
  match rows with
  | [] -> ""
  | header :: _ ->
      let cols = List.length header in
      let width c =
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          0 rows
      in
      let widths = List.init cols width in
      let line row =
        String.concat "  "
          (List.mapi
             (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
             row)
      in
      let sep =
        String.concat "  "
          (List.map (fun w -> String.make w '-') widths)
      in
      (match rows with
      | h :: rest ->
          String.concat "\n" ((line h :: sep :: List.map line rest) @ [ "" ])
      | [] -> "")

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let declarations (module A : App.S) =
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  List.map Variable.declaration (I.float_vars state)
  @ List.map Variable.int_declaration (I.int_vars state)

let table1 apps =
  let rows =
    [ "Name"; "Variables and their data structures" ]
    :: List.map
         (fun (module A : App.S) ->
           [ String.uppercase_ascii A.name;
             String.concat ", " (declarations (module A)) ])
         apps
  in
  "TABLE I: Variables necessary for checkpointing (class S)\n"
  ^ buf_table rows

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let percent x = Printf.sprintf "%.1f%%" (100. *. x)

(* Rows for the float variables of one report (the paper's Table II
   lists float variables only; integer variables are all-critical). *)
let table2_rows (r : Criticality.report) =
  List.filter_map
    (fun (v : Criticality.var_report) ->
      match v.Criticality.kind with
      | Criticality.Int_var -> None
      | Criticality.Float_var ->
          Some
            [ Printf.sprintf "%s(%s)" (String.uppercase_ascii r.Criticality.app)
                v.Criticality.name;
              string_of_int (Criticality.uncritical v);
              string_of_int (Criticality.total v);
              percent (Criticality.uncritical_rate v) ])
    r.Criticality.vars

let table2 reports =
  let rows =
    [ "Benchmark(variable)"; "Uncritical"; "Total"; "Uncritical rate" ]
    :: List.concat_map table2_rows reports
  in
  "TABLE II: Number of uncritical elements\n" ^ buf_table rows

(* ------------------------------------------------------------------ *)
(* Table III                                                           *)
(* ------------------------------------------------------------------ *)

type table3_row = {
  app : string;
  original_bytes : int; (* full checkpoint payload *)
  optimized_bytes : int; (* pruned checkpoint payload *)
  aux_bytes : int; (* the auxiliary (region bounds) file *)
}

(* The paper's metric compares checkpoint-file payloads; the auxiliary
   file is a separate artifact (it reports FT as 4161kb -> 4097kb, i.e.
   exactly the pruned elements, with the region bounds kept aside). *)
let saved_rate row =
  1. -. (float_of_int row.optimized_bytes /. float_of_int row.original_bytes)

(* Measure one application: snapshot its state full and pruned. *)
let table3_row ?(at_iter = 1) (module A : App.S) (report : Criticality.report)
    =
  let module I = A.Make (Float_scalar) in
  let state = I.create () in
  I.run state ~from:0 ~until:at_iter;
  let snap r =
    Pruned.snapshot ?report:r ~app:A.name ~iteration:at_iter
      ~float_vars:(I.float_vars state) ~int_vars:(I.int_vars state) ()
  in
  let full = Pruned.storage_of_file (snap None) in
  let pruned = Pruned.storage_of_file (snap (Some report)) in
  {
    app = A.name;
    original_bytes = full.Pruned.payload_bytes;
    optimized_bytes = pruned.Pruned.payload_bytes;
    aux_bytes = pruned.Pruned.aux_bytes;
  }

let kb bytes = Printf.sprintf "%.1fkb" (float_of_int bytes /. 1024.)

let table3 rows =
  let body =
    List.map
      (fun row ->
        [ String.uppercase_ascii row.app;
          kb row.original_bytes;
          kb row.optimized_bytes;
          percent (saved_rate row);
          kb row.aux_bytes ])
      rows
  in
  "TABLE III: Checkpointing storage\n"
  ^ buf_table
      ([ "Benchmark"; "Original"; "Optimized"; "Storage saved"; "Aux file" ]
      :: body)
