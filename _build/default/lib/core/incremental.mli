(** Incremental checkpointing baseline (related work: dirty-tracking
    checkpoints at element granularity) and its combination with
    criticality pruning.

    Policies compared: full / pruned (the paper) / incremental (changed
    elements only) / combined (changed ∩ critical).  A delta checkpoint
    is an ordinary pruned section; restore overlays base + deltas in
    order over a poisoned buffer, so uncritical slots stay poisoned. *)

open Scvad_ad

type mode = Incremental_only | Combined_with of Criticality.report

type tracker

val create_tracker : unit -> tracker

(** First call per variable = base checkpoint; later calls = deltas
    against the tracker's last-checkpointed values (bitwise change
    detection). *)
val snapshot :
  tracker ->
  mode:mode ->
  app:string ->
  iteration:int ->
  float_vars:Float_scalar.t Variable.t list ->
  int_vars:Variable.int_t list ->
  unit ->
  Scvad_checkpoint.Ckpt_format.file

(** Restore from the base + delta chain, oldest first; returns the
    newest file's iteration.  Raises on an empty chain. *)
val restore :
  ?poison:Scvad_checkpoint.Failure.poison ->
  files:Scvad_checkpoint.Ckpt_format.file list ->
  float_vars:Float_scalar.t Variable.t list ->
  int_vars:Variable.int_t list ->
  unit ->
  int

type policy_bytes = {
  full : int list;  (** payload bytes per checkpoint *)
  pruned : int list;
  incremental : int list;
  combined : int list;
}

(** Per-checkpoint payload bytes of all four policies over a run that
    checkpoints every iteration after [warmup] (default 1). *)
val storage_comparison :
  ?warmup:int ->
  checkpoints:int ->
  (module App.S) ->
  Criticality.report ->
  policy_bytes
