(* Tests for the NPB random generator, including agreement with an exact
   64-bit integer reference of the congruence x <- a*x mod 2^46. *)

open Scvad_nprand.Nprand

(* Exact reference: operands < 2^46 split into 23-bit halves so every
   Int64 product stays below 2^46. *)
let mulmod46 a x =
  let open Int64 in
  let mask23 = 0x7FFFFFL in
  let mask46 = 0x3FFFFFFFFFFFL in
  let a1 = shift_right_logical a 23 and a0 = logand a mask23 in
  let x1 = shift_right_logical x 23 and x0 = logand x mask23 in
  let mid = logand (add (mul a1 x0) (mul a0 x1)) mask23 in
  logand (add (shift_left mid 23) (mul a0 x0)) mask46

let test_matches_integer_reference () =
  let t = create ep_seed in
  let ix = ref (Int64.of_float ep_seed) in
  let ia = Int64.of_float default_mult in
  for step = 1 to 10_000 do
    ignore (next t);
    ix := mulmod46 ia !ix;
    if Int64.of_float (seed t) <> !ix then
      Alcotest.failf "diverged from integer reference at step %d" step
  done

let test_uniform_range_and_mean () =
  let t = create cg_seed in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let u = next t in
    if u <= 0. || u >= 1. then Alcotest.failf "deviate out of (0,1): %g" u;
    sum := !sum +. u
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.01 then
    Alcotest.failf "mean suspicious: %g" mean

let test_determinism () =
  let a = create ep_seed and b = create ep_seed in
  for _ = 1 to 1000 do
    Alcotest.(check (float 0.)) "same stream" (next a) (next b)
  done

let test_vranlc_matches_randlc () =
  let a = create cg_seed and b = create cg_seed in
  let buf = Array.make 64 0. in
  vranlc a ~a:default_mult 64 buf 0;
  Array.iter
    (fun v -> Alcotest.(check (float 0.)) "vranlc = randlc" (randlc b ~a:default_mult) v)
    buf

let test_ipow46_jump_ahead () =
  List.iter
    (fun k ->
      (* Starting from seed 1, k multiplications by a land on a^k. *)
      let t = create 1. in
      for _ = 1 to k do
        ignore (randlc t ~a:default_mult)
      done;
      Alcotest.(check (float 0.))
        (Printf.sprintf "ipow46 a %d" k)
        (seed t)
        (ipow46 default_mult k))
    [ 1; 2; 3; 7; 100; 12345 ]

let test_ipow46_zero () =
  Alcotest.(check (float 0.)) "a^0 = 1" 1. (ipow46 default_mult 0)

let suites =
  [ ( "nprand",
      [ Alcotest.test_case "integer reference (10k steps)" `Quick
          test_matches_integer_reference;
        Alcotest.test_case "uniform range and mean" `Quick
          test_uniform_range_and_mean;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "vranlc = randlc" `Quick test_vranlc_matches_randlc;
        Alcotest.test_case "ipow46 jump-ahead" `Quick test_ipow46_jump_ahead;
        Alcotest.test_case "ipow46 zero" `Quick test_ipow46_zero ] ) ]
