(* Tests for the linear-algebra substrate: 5x5 blocks, block-tridiagonal
   and pentadiagonal solvers, complex arithmetic and the FFT — in float
   mode against dense references, and under AD against finite
   differences. *)

open Scvad_ad
module B = Scvad_solvers.Block5.Make (Float_scalar)
module BT = Scvad_solvers.Btridiag.Make (Float_scalar)
module P = Scvad_solvers.Pentadiag.Make (Float_scalar)
module C = Scvad_solvers.Dcomplex.Make (Float_scalar)
module F = Scvad_solvers.Fft.Make (Float_scalar)

let close ?(eps = 1e-9) msg expected got =
  let scale = Stdlib.max 1. (abs_float expected) in
  if abs_float (expected -. got) > eps *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected got

let rand_state = Random.State.make [| 42 |]
let rand () = Random.State.float rand_state 2. -. 1.

(* Random diagonally dominant 5x5 block. *)
let random_block () =
  let m = B.zero () in
  for i = 0 to 4 do
    for j = 0 to 4 do
      B.set m i j (rand ())
    done;
    B.set m i i (B.get m i i +. 6.)
  done;
  m

let random_vec () = Array.init 5 (fun _ -> rand ())

let test_block5_identity () =
  let m = random_block () in
  let i5 = B.identity () in
  let mi = B.matmul m i5 in
  Array.iteri (fun k v -> close "M*I = M" m.(k) v) mi;
  let x = random_vec () in
  let ix = B.matvec i5 x in
  Array.iteri (fun k v -> close "I*x = x" x.(k) v) ix

let test_block5_solve () =
  let m = random_block () in
  let x = random_vec () in
  let r = B.matvec m x in
  B.solve m r;
  Array.iteri (fun k v -> close ~eps:1e-10 "solve recovers x" x.(k) v) r

let test_block5_gauss_jordan_inverse () =
  (* gauss_jordan with c = I computes A^-1 in c. *)
  let m = random_block () in
  let minv = B.identity () in
  let r = random_vec () in
  B.gauss_jordan (B.copy m) minv r;
  let prod = B.matmul m minv in
  for i = 0 to 4 do
    for j = 0 to 4 do
      close ~eps:1e-9 "A * A^-1 = I"
        (if i = j then 1. else 0.)
        (B.get prod i j)
    done
  done

let test_block5_of_rows () =
  let rows = Array.init 5 (fun i -> Array.init 5 (fun j -> float ((i * 5) + j))) in
  let m = B.of_rows rows in
  close "of_rows layout" 13. (B.get m 2 3)

(* Dense reference multiply of a block-tridiagonal system. *)
let btridiag_apply ~a ~b ~c (x : float array array) =
  let n = Array.length b in
  Array.init n (fun i ->
      let acc = B.matvec b.(i) x.(i) in
      let acc =
        if i > 0 then Array.map2 ( +. ) acc (B.matvec a.(i) x.(i - 1))
        else acc
      in
      if i < n - 1 then Array.map2 ( +. ) acc (B.matvec c.(i) x.(i + 1))
      else acc)

let test_btridiag_solve_sizes () =
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> random_block ()) in
      let b = Array.init n (fun _ -> random_block ()) in
      let c = Array.init n (fun _ -> random_block ()) in
      let x = Array.init n (fun _ -> random_vec ()) in
      let r = btridiag_apply ~a ~b ~c x in
      BT.solve ~a ~b ~c ~r;
      Array.iteri
        (fun i xi ->
          Array.iteri
            (fun k v -> close ~eps:1e-7 (Printf.sprintf "n=%d x[%d][%d]" n i k) v xi.(k))
            r.(i))
        x)
    [ 1; 2; 3; 8; 12 ]

let pentadiag_apply ~e ~a ~d ~c ~f (x : float array) =
  let n = Array.length d in
  Array.init n (fun i ->
      let acc = ref (d.(i) *. x.(i)) in
      if i >= 2 then acc := !acc +. (e.(i) *. x.(i - 2));
      if i >= 1 then acc := !acc +. (a.(i) *. x.(i - 1));
      if i + 1 < n then acc := !acc +. (c.(i) *. x.(i + 1));
      if i + 2 < n then acc := !acc +. (f.(i) *. x.(i + 2));
      !acc)

let test_pentadiag_solve_sizes () =
  List.iter
    (fun n ->
      let band () = Array.init n (fun _ -> rand ()) in
      let e = band () and a = band () and c = band () and f = band () in
      let d = Array.init n (fun _ -> 8. +. rand ()) in
      let x = Array.init n (fun _ -> rand ()) in
      let r = pentadiag_apply ~e ~a ~d ~c ~f x in
      P.solve ~e ~a ~d ~c ~f ~r;
      Array.iteri
        (fun i xi -> close ~eps:1e-8 (Printf.sprintf "n=%d x[%d]" n i) xi r.(i))
        x)
    [ 1; 2; 3; 5; 12; 33 ]

let test_dcomplex_mul () =
  let a = C.of_floats 1.5 (-2.) in
  let b = C.of_floats 0.25 3. in
  let p = C.mul a b in
  let refc = Complex.mul { re = 1.5; im = -2. } { re = 0.25; im = 3. } in
  close "re" refc.re (Float_scalar.to_float (C.re p));
  close "im" refc.im (Float_scalar.to_float (C.im p));
  let c = C.conj a in
  close "conj" 2. (C.im c);
  close "abs2" (1.5 ** 2. +. 4.) (C.abs2 a)

(* Naive DFT reference. *)
let dft_naive sign (input : Complex.t array) =
  let n = Array.length input in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for j = 0 to n - 1 do
        let angle = sign *. 2. *. Float.pi *. float_of_int (j * k) /. float_of_int n in
        let w = { Complex.re = cos angle; im = sin angle } in
        acc := Complex.add !acc (Complex.mul w input.(j))
      done;
      !acc)

let random_signal n = Array.init n (fun _ -> { Complex.re = rand (); im = rand () })

let to_c (z : Complex.t) = C.of_floats z.re z.im

let test_fft_matches_dft () =
  List.iter
    (fun n ->
      let signal = random_signal n in
      let a = Array.map to_c signal in
      F.forward a ~off:0 ~n;
      let expected = dft_naive (-1.) signal in
      Array.iteri
        (fun k z ->
          let re, im = C.to_floats z in
          close ~eps:1e-9 (Printf.sprintf "n=%d re[%d]" n k) expected.(k).re re;
          close ~eps:1e-9 (Printf.sprintf "n=%d im[%d]" n k) expected.(k).im im)
        a)
    [ 1; 2; 4; 8; 16; 64 ]

let test_fft_roundtrip () =
  let n = 64 in
  let signal = random_signal n in
  let a = Array.map to_c signal in
  F.forward a ~off:0 ~n;
  F.inverse a ~off:0 ~n;
  Array.iteri
    (fun k z ->
      let re, im = C.to_floats z in
      close ~eps:1e-10 "roundtrip re" signal.(k).re re;
      close ~eps:1e-10 "roundtrip im" signal.(k).im im)
    a

let test_fft_delta () =
  (* FFT of a delta is the constant 1. *)
  let n = 16 in
  let a = Array.init n (fun i -> if i = 0 then C.one else C.zero) in
  F.forward a ~off:0 ~n;
  Array.iter
    (fun z ->
      let re, im = C.to_floats z in
      close "delta re" 1. re;
      close "delta im" 0. im)
    a

let test_fft_subrange () =
  (* Transform only a pencil in the middle of a larger array. *)
  let total = 32 and off = 8 and n = 16 in
  let signal = random_signal total in
  let a = Array.map to_c signal in
  F.forward a ~off ~n;
  let expected = dft_naive (-1.) (Array.sub signal off n) in
  for k = 0 to n - 1 do
    let re, im = C.to_floats a.(off + k) in
    close "pencil re" expected.(k).re re;
    close "pencil im" expected.(k).im im
  done;
  (* Outside the pencil untouched. *)
  let re, im = C.to_floats a.(0) in
  close "before untouched re" signal.(0).re re;
  close "before untouched im" signal.(0).im im

let test_fft_bad_size () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft.transform: n must be 2^k") (fun () ->
      F.forward (Array.make 12 C.zero) ~off:0 ~n:12)

(* AD through the solvers: gradient vs finite differences. *)

(* f(params) = sum of solution of a diagonally dominant block-tridiagonal
   system built from params. *)
module Btridiag_fn (S : Scalar.S) = struct
  let n = 4

  let run (get : int -> S.t) =
    let module BTx = Scvad_solvers.Btridiag.Make (S) in
    let pos = ref 0 in
    let nextv () =
      let v = get !pos in
      incr pos;
      v
    in
    let block ~dom =
      let m = Array.init 25 (fun _ -> nextv ()) in
      if dom then
        for i = 0 to 4 do
          m.((i * 5) + i) <- S.(m.((i * 5) + i) +. of_float 8.)
        done;
      m
    in
    let a = Array.init n (fun _ -> block ~dom:false) in
    let b = Array.init n (fun _ -> block ~dom:true) in
    let c = Array.init n (fun _ -> block ~dom:false) in
    let r = Array.init n (fun _ -> Array.init 5 (fun _ -> nextv ())) in
    BTx.solve ~a ~b ~c ~r;
    let acc = ref S.zero in
    Array.iter (Array.iter (fun v -> acc := S.(!acc +. v))) r;
    !acc
end

let test_ad_through_btridiag () =
  let n = 4 in
  let mk_input () =
    Array.init (n * ((3 * 25) + 5)) (fun i -> 0.1 +. (0.01 *. float i))
  in
  let float_f (x : float array) =
    let module R = Btridiag_fn (Float_scalar) in
    R.run (fun i -> x.(i))
  in
  let x = mk_input () in
  let tape = Tape.create () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let vars = Array.map (Reverse.var tape) x in
  let out =
    let module R = Btridiag_fn (S) in
    R.run (fun i -> vars.(i))
  in
  let g = Reverse.backward tape out in
  close ~eps:1e-9 "primal agrees" (float_f (Array.copy x)) (Reverse.value out);
  (* Spot-check a handful of coordinates against finite differences. *)
  List.iter
    (fun i ->
      let fd = Finite_diff.derivative ~h:1e-6 float_f (Array.copy x) i in
      close ~eps:2e-4
        (Printf.sprintf "d out/d x%d" i)
        fd
        (Reverse.grad g vars.(i)))
    [ 0; 13; 77; 150; Array.length x - 1 ]

module Fft_fn (S : Scalar.S) = struct
  let n = 16

  let run (get : int -> S.t) =
    let module Cx = Scvad_solvers.Dcomplex.Make (S) in
    let module Fx = Scvad_solvers.Fft.Make (S) in
    let a = Array.init n (fun i -> Cx.make (get (2 * i)) (get ((2 * i) + 1))) in
    Fx.forward a ~off:0 ~n;
    (* checksum-like output *)
    let acc = ref S.zero in
    Array.iter (fun z -> acc := S.(!acc +. Cx.re z +. Cx.im z)) a;
    !acc
end

let test_ad_through_fft () =
  let n = 16 in
  let base = Array.init (2 * n) (fun i -> sin (float i)) in
  let float_f x =
    let module R = Fft_fn (Float_scalar) in
    R.run (fun i -> x.(i))
  in
  let tape = Tape.create () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let vars = Array.map (Reverse.var tape) base in
  let out =
    let module R = Fft_fn (S) in
    R.run (fun i -> vars.(i))
  in
  let g = Reverse.backward tape out in
  List.iter
    (fun i ->
      let fd = Finite_diff.derivative float_f (Array.copy base) i in
      close ~eps:1e-4 (Printf.sprintf "fft grad %d" i) fd (Reverse.grad g vars.(i)))
    [ 0; 1; 7; 30 ]

let suites =
  [ ( "solvers.block5",
      [ Alcotest.test_case "identity laws" `Quick test_block5_identity;
        Alcotest.test_case "solve" `Quick test_block5_solve;
        Alcotest.test_case "gauss-jordan inverse" `Quick
          test_block5_gauss_jordan_inverse;
        Alcotest.test_case "of_rows" `Quick test_block5_of_rows ] );
    ( "solvers.btridiag",
      [ Alcotest.test_case "solve, several sizes" `Quick
          test_btridiag_solve_sizes;
        Alcotest.test_case "AD gradient vs finite diff" `Quick
          test_ad_through_btridiag ] );
    ( "solvers.pentadiag",
      [ Alcotest.test_case "solve, several sizes" `Quick
          test_pentadiag_solve_sizes ] );
    ( "solvers.dcomplex",
      [ Alcotest.test_case "mul/conj/abs2" `Quick test_dcomplex_mul ] );
    ( "solvers.fft",
      [ Alcotest.test_case "matches naive DFT" `Quick test_fft_matches_dft;
        Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
        Alcotest.test_case "delta" `Quick test_fft_delta;
        Alcotest.test_case "subrange pencil" `Quick test_fft_subrange;
        Alcotest.test_case "bad size" `Quick test_fft_bad_size;
        Alcotest.test_case "AD gradient vs finite diff" `Quick
          test_ad_through_fft ] ) ]
