test/test_incremental.ml: Alcotest Analyzer App Float Incremental Int64 Lazy List Option Printf Scvad_ad Scvad_core Scvad_npb Variable
