test/test_nd.ml: Alcotest Array List Nd QCheck QCheck_alcotest Scvad_nd Shape String
