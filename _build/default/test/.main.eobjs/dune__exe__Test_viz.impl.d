test/test_viz.ml: Alcotest Array Ascii Astring Cube Figures Filename Fun List Ppm Scvad_core Scvad_npb Scvad_viz Strip Sys Unix
