test/test_checkpoint.ml: Alcotest Array Bytes Char Ckpt_format Crc32 Failure Filename Float Fun Gen List Option Printf QCheck QCheck_alcotest Random Regions Scvad_checkpoint Store String Sys Unix
