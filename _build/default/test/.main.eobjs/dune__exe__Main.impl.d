test/main.ml: Alcotest Test_ad Test_checkpoint Test_core Test_corruption Test_extras Test_incremental Test_mixed Test_nd Test_npb Test_nprand Test_solvers Test_viz
