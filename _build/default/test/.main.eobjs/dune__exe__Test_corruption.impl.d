test/test_corruption.ml: Alcotest Analyzer App Array Criticality Harness List Printf Scvad_checkpoint Scvad_core Scvad_npb Seq
