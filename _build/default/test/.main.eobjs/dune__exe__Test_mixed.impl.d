test/test_mixed.ml: Alcotest Analyzer App Array Criticality Float Impact List Mixed Option Printf Scvad_ad Scvad_checkpoint Scvad_core Scvad_nd Scvad_npb Variable
