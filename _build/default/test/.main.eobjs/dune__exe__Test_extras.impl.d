test/test_extras.ml: Alcotest Analyzer App Criticality Filename Float Fun Harness Lazy List Option Printf QCheck QCheck_alcotest Random Scvad_checkpoint Scvad_core Scvad_npb Unix
