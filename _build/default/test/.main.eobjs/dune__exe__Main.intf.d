test/main.mli:
