test/test_nprand.ml: Alcotest Array Int64 List Printf Scvad_nprand
