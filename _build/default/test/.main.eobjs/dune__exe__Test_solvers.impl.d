test/test_solvers.ml: Alcotest Array Complex Finite_diff Float Float_scalar List Printf Random Reverse Scalar Scvad_ad Scvad_solvers Stdlib Tape
