test/test_npb.ml: Alcotest Analyzer App Array Astring Criticality Filename Float Fun Harness Hashtbl List Printf Random Report Scvad_checkpoint Scvad_core Scvad_npb Unix
