test/test_ad.ml: Activity Alcotest Array Dep_tape Dual Finite_diff Float Float_scalar Itaint List Printf QCheck QCheck_alcotest Reverse Scalar Scvad_ad Stdlib Tape
