test/test_core.ml: Alcotest Analyzer App Array Astring Criticality Filename Float Float_scalar Fun Harness List Printf Pruned Random Report Scvad_ad Scvad_checkpoint Scvad_core Scvad_nd Unix Variable
