(* Tests for shapes and n-dimensional arrays. *)

open Scvad_nd

let test_shape_basics () =
  let s = Shape.create [ 12; 13; 13; 5 ] in
  Alcotest.(check int) "size" 10140 (Shape.size s);
  Alcotest.(check int) "rank" 4 (Shape.rank s);
  Alcotest.(check int) "stride 0" (13 * 13 * 5) (Shape.stride s 0);
  Alcotest.(check int) "stride 3" 1 (Shape.stride s 3);
  Alcotest.(check int) "offset" (((((2 * 13) + 3) * 13) + 4) * 5)
    (Shape.offset s [| 2; 3; 4; 0 |]);
  Alcotest.(check string) "to_string" "[12x13x13x5]" (Shape.to_string s)

let test_shape_errors () =
  Alcotest.check_raises "negative dim"
    (Invalid_argument "Shape.create: dimensions must be positive") (fun () ->
      ignore (Shape.create [ 3; -1 ]));
  let s = Shape.create [ 2; 3 ] in
  Alcotest.check_raises "oob"
    (Invalid_argument "Shape.offset: out of bounds") (fun () ->
      ignore (Shape.offset s [| 1; 3 |]));
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Shape.offset: rank mismatch") (fun () ->
      ignore (Shape.offset s [| 1 |]))

let test_shape_iter_order () =
  let s = Shape.create [ 2; 3; 4 ] in
  let expected = ref 0 in
  Shape.iter s (fun idx ->
      Alcotest.(check int) "row-major order" !expected (Shape.offset s idx);
      incr expected);
  Alcotest.(check int) "visited all" (Shape.size s) !expected

let shape_gen =
  QCheck.Gen.(list_size (int_range 1 4) (int_range 1 7))

let prop_offset_roundtrip =
  QCheck.Test.make ~count:200 ~name:"offset ∘ index_of_offset = id"
    QCheck.(make ~print:(fun l -> String.concat "x" (List.map string_of_int l))
              shape_gen)
    (fun dims ->
      let s = Shape.create dims in
      let ok = ref true in
      for off = 0 to Shape.size s - 1 do
        if Shape.offset s (Shape.index_of_offset s off) <> off then ok := false
      done;
      !ok)

let test_nd_basics () =
  let s = Shape.create [ 3; 4 ] in
  let a = Nd.init s (fun idx -> (idx.(0) * 10) + idx.(1)) in
  Alcotest.(check int) "get" 23 (Nd.get a [| 2; 3 |]);
  Nd.set a [| 1; 2 |] 99;
  Alcotest.(check int) "set/get" 99 (Nd.get a [| 1; 2 |]);
  Alcotest.(check int) "get_flat" 99 (Nd.get_flat a ((1 * 4) + 2));
  let b = Nd.map (fun x -> x * 2) a in
  Alcotest.(check int) "map" 198 (Nd.get b [| 1; 2 |]);
  let c = Nd.copy a in
  Nd.set_flat c 0 (-1);
  Alcotest.(check int) "copy independent" 0 (Nd.get_flat a 0)

let test_nd_slice3 () =
  let s = Shape.create [ 3; 4; 5 ] in
  let a = Nd.init s (fun idx -> (idx.(0) * 100) + (idx.(1) * 10) + idx.(2)) in
  let sl = Nd.slice3 a ~axis:0 ~at:2 in
  Alcotest.(check int) "axis 0 slice" 234 (Nd.get sl [| 3; 4 |]);
  let sl1 = Nd.slice3 a ~axis:1 ~at:1 in
  Alcotest.(check int) "axis 1 slice" 214 (Nd.get sl1 [| 2; 4 |]);
  let sl2 = Nd.slice3 a ~axis:2 ~at:0 in
  Alcotest.(check int) "axis 2 slice" 230 (Nd.get sl2 [| 2; 3 |])

let test_nd_of_array_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Nd.of_array: data length does not match shape")
    (fun () -> ignore (Nd.of_array (Shape.create [ 2; 2 ]) [| 1; 2; 3 |]))

let suites =
  [ ( "nd.shape",
      [ Alcotest.test_case "basics" `Quick test_shape_basics;
        Alcotest.test_case "errors" `Quick test_shape_errors;
        Alcotest.test_case "iter order" `Quick test_shape_iter_order;
        QCheck_alcotest.to_alcotest prop_offset_roundtrip ] );
    ( "nd.array",
      [ Alcotest.test_case "basics" `Quick test_nd_basics;
        Alcotest.test_case "slice3" `Quick test_nd_slice3;
        Alcotest.test_case "of_array mismatch" `Quick
          test_nd_of_array_mismatch ] ) ]
