(* Full experiment report: regenerates the paper's Table I, Table II,
   Table III and the six distribution figures for all eight NPB
   benchmarks.  Figure images (PPM) land in the output directory
   (default [_results]). *)

module Crit = Scvad_core.Criticality

let out_dir = ref "_results"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let time name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.eprintf "[report] %s: %.2fs\n%!" name (Unix.gettimeofday () -. t0);
  r

let () =
  (match Sys.argv with
  | [| _; dir |] -> out_dir := dir
  | _ -> ());
  mkdir_p !out_dir;
  let apps = Scvad_npb.Suite.all in
  (* Table I straight from the registries. *)
  print_string (Scvad_core.Report.table1 apps);
  print_newline ();
  (* One analysis per benchmark. *)
  let reports =
    List.map
      (fun (module A : Scvad_core.App.S) ->
        time ("analyze " ^ A.name) (fun () ->
            ((module A : Scvad_core.App.S), Scvad_core.Analyzer.run (module A))))
      apps
  in
  print_string (Scvad_core.Report.table2 (List.map snd reports));
  print_newline ();
  let rows =
    List.map
      (fun ((module A : Scvad_core.App.S), r) ->
        Scvad_core.Report.table3_row (module A) r)
      reports
  in
  print_string (Scvad_core.Report.table3 rows);
  print_newline ();
  (* Figures. *)
  let report_of name = List.assoc name (List.map (fun ((module A : Scvad_core.App.S), r) -> (A.name, r)) reports) in
  let figures =
    [ Scvad_viz.Figures.fig3 (Crit.find (report_of "bt") "u");
      Scvad_viz.Figures.fig4 (Crit.find (report_of "mg") "u");
      Scvad_viz.Figures.fig5 (Crit.find (report_of "mg") "r");
      Scvad_viz.Figures.fig6 (Crit.find (report_of "cg") "x");
      Scvad_viz.Figures.fig7 (Crit.find (report_of "lu") "u");
      Scvad_viz.Figures.fig8 (Crit.find (report_of "ft") "y") ]
  in
  List.iter
    (fun (fig : Scvad_viz.Figures.output) ->
      Printf.printf "== %s\n" fig.Scvad_viz.Figures.title;
      (* Keep stdout compact: print headline lines only, full text goes
         to a file. *)
      (match String.index_opt fig.Scvad_viz.Figures.text '\n' with
      | Some i -> print_endline (String.sub fig.Scvad_viz.Figures.text 0 i)
      | None -> print_string fig.Scvad_viz.Figures.text);
      let txt_path =
        Filename.concat !out_dir
          (Printf.sprintf "%s.txt"
             (String.map
                (fun c -> if c = ' ' || c = '.' then '_' else c)
                fig.Scvad_viz.Figures.title))
      in
      let oc = open_out txt_path in
      output_string oc fig.Scvad_viz.Figures.text;
      close_out oc;
      let images = Scvad_viz.Figures.write_images ~dir:!out_dir fig in
      List.iter (fun p -> Printf.printf "   wrote %s\n" p) images;
      Printf.printf "   wrote %s\n" txt_path)
    figures;
  Printf.printf "\nAll artifacts under %s/\n" !out_dir
