(* scvad_activity driver: static activity verdicts over the NPB kernel
   sources, with an optional dynamic soundness gate.

   Usage: activity [--format text|json] [--out FILE] [--check] [ROOT]

   ROOT is the directory of kernel sources (default: the repo's
   lib/npb, found by walking up to dune-project).  --check runs the
   unfiltered dynamic reverse analysis for every analyzed app and
   fails if any statically-inactive element is dynamically critical,
   if the static pass proved nothing at all (a vacuous pass would make
   the gate meaningless), or if the analyzer fast path (static
   pre-resolution) changes any criticality mask.  Exit status: 0
   clean, 1 on error findings or a gate violation, 2 on usage errors. *)

module Driver = Scvad_activity.Driver
module Verdict = Scvad_activity.Verdict
module Finding = Scvad_lint.Finding
module Criticality = Scvad_core.Criticality

let fail_usage msg =
  prerr_endline ("activity: " ^ msg);
  exit 2

(* Dynamic criticality masks of one app (true = critical), keyed by
   variable name, from the unfiltered reverse analysis. *)
let dynamic_masks (report : Criticality.report) =
  List.map
    (fun (v : Criticality.var_report) -> (v.Criticality.name, v.Criticality.mask))
    report.Criticality.vars

(* The gate, part 1: no statically-inactive element may be dynamically
   critical. *)
let check_soundness (av : Verdict.app_verdicts) report =
  match Driver.unsound_claims av ~masks:(dynamic_masks report) with
  | [] -> true
  | bad ->
      List.iter
        (fun (var, (n, sample)) ->
          Printf.eprintf
            "activity: GATE VIOLATION: %s.%s: %d dynamically critical \
             element(s) inside the statically-inactive claim (e.g. %s)\n"
            av.Verdict.app var n
            (String.concat ", " (List.map string_of_int sample)))
        bad;
      false

(* The gate, part 2: pre-resolving statically-inactive variables must
   not change any mask — gate part 1 plus all-false masks for skipped
   variables imply this, so a mismatch means an analyzer bug. *)
let check_fast_path (module A : Scvad_core.App.S) verdicts report =
  let filtered =
    Scvad_core.Analyzer.run
      ~config:Scvad_core.Analyzer.Config.(default |> with_static verdicts)
      (module A)
  in
  List.for_all
    (fun (v : Criticality.var_report) ->
      let f = Criticality.find filtered v.Criticality.name in
      if f.Criticality.mask = v.Criticality.mask then true
      else begin
        Printf.eprintf
          "activity: GATE VIOLATION: %s.%s: fast-path mask differs from the \
           unfiltered analysis\n"
          A.name v.Criticality.name;
        false
      end)
    report.Criticality.vars

let run_gate verdicts =
  let ok = ref true in
  let claims = Verdict.total_inactive_claims verdicts in
  if claims = 0 then begin
    prerr_endline
      "activity: GATE VIOLATION: the static pass proved no element \
       inactive anywhere — the gate would be vacuous";
    ok := false
  end;
  let checked =
    List.filter_map
      (fun (av : Verdict.app_verdicts) ->
        match Scvad_npb.Suite.find av.Verdict.app with
        | Some app -> Some (av, app)
        | None ->
            Printf.eprintf
              "activity: GATE VIOLATION: app %s has no registered benchmark\n"
              av.Verdict.app;
            ok := false;
            None)
      verdicts
  in
  List.iter
    (fun ((av : Verdict.app_verdicts), (module A : Scvad_core.App.S)) ->
      let report = Scvad_core.Analyzer.run (module A) in
      if not (check_soundness av report) then ok := false;
      if Verdict.skippable_float_vars av <> [] then
        if not (check_fast_path (module A) verdicts report) then ok := false)
    checked;
  if !ok then
    Printf.printf
      "activity: gate passed: %d inactive element claim(s) across %d app(s), \
       none dynamically critical; fast-path masks identical.\n"
      claims (List.length checked);
  !ok

let () =
  let format = ref "text" in
  let out = ref "" in
  let check = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ( "--check",
        Arg.Set check,
        " gate the verdicts against the dynamic reverse analysis" );
    ]
  in
  let usage = "activity [--format text|json] [--out FILE] [--check] [ROOT]" in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let root =
    match List.rev !roots with
    | [] -> (
        match Driver.locate_npb_dir () with
        | Some d -> d
        | None -> fail_usage "no ROOT given and no lib/npb found above cwd")
    | [ d ] -> d
    | _ -> fail_usage "at most one ROOT directory"
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    fail_usage (Printf.sprintf "ROOT %s is not a directory" root);
  let verdicts, findings = Driver.analyze_dir root in
  let report =
    match !format with
    | "json" -> Driver.render_json verdicts findings
    | _ -> Driver.render_text verdicts findings
  in
  print_string report;
  if !out <> "" then begin
    let oc = open_out !out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc report)
  end;
  let has_errors =
    List.exists
      (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
      findings
  in
  let gate_ok = if !check then run_gate verdicts else true in
  if has_errors || not gate_ok then exit 1
