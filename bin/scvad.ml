(* scvad — command-line interface.

   Subcommands:
     list        benchmarks and their checkpoint variables
     run         execute a benchmark (golden run)
     analyze     scrutinize checkpoint variables (the paper's analysis)
     visualize   render a variable's criticality distribution
     checkpoint  run with periodic (optionally pruned) checkpoints
     restart     restore the latest checkpoint and finish the run
     report      regenerate every table and figure                     *)

open Cmdliner
module Crit = Scvad_core.Criticality

let find_app name =
  match Scvad_npb.Suite.find name with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %S (try: %s)" name
           (String.concat ", " Scvad_npb.Suite.names))

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let app_arg =
  let doc = "Benchmark name (bt, sp, mg, cg, lu, ft, ep, is)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let niter_arg =
  let doc = "Override the number of main-loop iterations." in
  Arg.(value & opt (some int) None & info [ "niter"; "n" ] ~docv:"N" ~doc)

let mode_arg =
  let modes =
    [ ("reverse", Crit.Reverse_gradient);
      ("forward", Crit.Forward_probe);
      ("activity", Crit.Activity_dependence) ]
  in
  let doc =
    "Analysis mode: $(b,reverse) (one taped run + one backward sweep),
     $(b,forward) (one dual-number run per element), or $(b,activity)
     (dependence only)."
  in
  Arg.(value & opt (enum modes) Crit.Reverse_gradient & info [ "mode" ] ~doc)

let at_iter_arg =
  let doc = "Checkpoint boundary the analysis models." in
  Arg.(value & opt int 0 & info [ "at-iter" ] ~docv:"T" ~doc)

(* --jobs rejects 0 and negatives at parse time: a pool of width 0 has
   no meaning, and catching it in argv gives a usage error instead of a
   late Invalid_argument out of Pool.create. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "must be >= 1 (got %d)" n))
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected a positive integer" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Domains the analysis fans out on (default: the recommended domain
     count clamped to the container's CPU quota). $(docv) = 1 runs fully
     sequentially; the produced reports are identical for every $(docv)."
  in
  Arg.(
    value
    & opt positive_int (Scvad_par.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* --memory-budget accepts a node count with an optional k/M/G suffix
   (1e3/1e6/1e9); the budget caps materialized tape storage at 24 bytes
   per node slot, so e.g. 6M nodes is ~144 MiB of tape. *)
let budget_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid node count %S (expected e.g. 500000, 500k, 6M)" s))
    in
    let n = String.length s in
    if n = 0 then fail ()
    else
      let mult, digits =
        match s.[n - 1] with
        | 'k' | 'K' -> (1_000., String.sub s 0 (n - 1))
        | 'm' | 'M' -> (1_000_000., String.sub s 0 (n - 1))
        | 'g' | 'G' -> (1_000_000_000., String.sub s 0 (n - 1))
        | _ -> (1., s)
      in
      match float_of_string_opt digits with
      | Some v when v *. mult >= 1. -> Ok (int_of_float (v *. mult))
      | Some _ | None -> fail ()
  in
  Arg.conv ~docv:"NODES" (parse, Format.pp_print_int)

let memory_budget_arg =
  let doc =
    "Cap materialized reverse-tape storage at $(docv) node slots (24
     bytes each; k/M/G suffixes accepted). Discarded tape windows are
     rebuilt by replaying iterations during the backward sweep; masks
     are bitwise identical to the unbudgeted analysis. Reverse mode
     only."
  in
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "memory-budget" ] ~docv:"NODES" ~doc)

(* The schedule is parsed as a string because [Planned] carries a
   payload no flag can spell: its boundaries come out of the static
   cost model at run time. *)
let schedule_arg =
  let doc =
    "Recompute-vs-store schedule under --memory-budget: $(b,binomial)
     (optimal re-snapshotting during replay), $(b,log-stride) (doubling
     snapshot stride, replay from retained snapshots only),
     $(b,all-store) (never discard; the budget is ignored), or
     $(b,planned) (snapshot boundaries computed offline by the static
     cost model before any recording)."
  in
  Arg.(
    value
    & opt (enum
             [ ("binomial", `Binomial); ("log-stride", `Log_stride);
               ("all-store", `All_store); ("planned", `Planned) ])
        `Binomial
    & info [ "tape-schedule" ] ~doc)

let dir_arg =
  let doc = "Checkpoint directory." in
  Arg.(value & opt string "_checkpoints" & info [ "dir"; "d" ] ~docv:"DIR" ~doc)

let out_arg =
  let doc = "Output directory for images and reports." in
  Arg.(value & opt string "_results" & info [ "out"; "o" ] ~docv:"DIR" ~doc)

let pruned_arg =
  let doc = "Prune checkpoints using a fresh criticality analysis." in
  Arg.(value & flag & info [ "pruned"; "p" ] ~doc)

let poison_arg =
  let poisons =
    [ ("nan", Scvad_checkpoint.Failure.Nan);
      ("zero", Scvad_checkpoint.Failure.Zero) ]
  in
  let doc = "Value placed in uncritical elements on restore." in
  Arg.(value & opt (enum poisons) Scvad_checkpoint.Failure.Nan
       & info [ "poison" ] ~doc)

let retain_arg =
  let doc =
    "Retention: keep only the $(docv) newest checkpoints (older ones are
     garbage-collected after each save)."
  in
  Arg.(value & opt (some int) None & info [ "retain"; "k" ] ~docv:"K" ~doc)

let retain_every_arg =
  let doc =
    "Additionally retain older checkpoints whose iteration is divisible
     by $(docv) (the sparse level of the retention ladder)."
  in
  Arg.(value & opt (some int) None & info [ "retain-every" ] ~docv:"M" ~doc)

let inject_arg =
  let doc =
    "Deterministic I/O fault injection seeded with $(docv): torn writes,
     truncations, single-bit flips (5% each) and transient retried
     failures (10%)."
  in
  Arg.(value & opt (some int) None & info [ "inject" ] ~docv:"SEED" ~doc)

let no_verify_arg =
  let doc =
    "Disable write verification (read-back + CRC check before the atomic
     rename); injected write faults then land on disk."
  in
  Arg.(value & flag & info [ "no-verify" ] ~doc)

let print_fault_events store_faults =
  match store_faults with
  | None -> ()
  | Some plan ->
      let events = Scvad_checkpoint.Io_fault.events plan in
      Printf.printf "injected faults: %d\n" (List.length events);
      List.iter
        (fun e ->
          Printf.printf "  op %3d %-10s %s (%s)\n" e.Scvad_checkpoint.Io_fault.op
            (Scvad_checkpoint.Io_fault.kind_name e.Scvad_checkpoint.Io_fault.kind)
            (Filename.basename e.Scvad_checkpoint.Io_fault.path)
            e.Scvad_checkpoint.Io_fault.detail)
        events

let handle = function
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "scvad: %s\n" msg;
      1

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (module A : Scvad_core.App.S) ->
        Printf.printf "%-4s %s\n" A.name A.description;
        List.iter
          (fun d -> Printf.printf "       %s\n" d)
          (Scvad_core.Report.declarations (module A)))
      Scvad_npb.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and checkpoint variables")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run name niter =
    handle
      (Result.map
         (fun (module A : Scvad_core.App.S) ->
           let t0 = Unix.gettimeofday () in
           let g = Scvad_core.Harness.golden_run ?niter (module A) in
           Printf.printf "%s: output %.15g after %d iterations (%.2fs)\n"
             A.name g.Scvad_core.Harness.output g.Scvad_core.Harness.iterations
             (Unix.gettimeofday () -. t0))
         (find_app name))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a benchmark (golden run)")
    Term.(const run $ app_arg $ niter_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let print_report (r : Crit.report) =
  Printf.printf
    "benchmark %s: mode %s, boundary t=%d, window until %d, %d tape nodes\n"
    r.Crit.app (Crit.mode_name r.Crit.mode) r.Crit.at_iteration
    r.Crit.analyzed_until r.Crit.tape_nodes;
  (match r.Crit.tape_profile with
  | None -> ()
  | Some p ->
      Printf.printf
        "  tape: %s schedule, budget %d nodes, %d segments, %d snapshots, \
         %d replays (%d nodes re-pushed), peak live %d nodes\n"
        p.Crit.t_schedule p.Crit.t_budget_nodes p.Crit.t_segments
        p.Crit.t_snapshots p.Crit.t_replays p.Crit.t_replayed_nodes
        p.Crit.t_peak_live_nodes);
  (match r.Crit.sweep_profile with
  | None -> ()
  | Some w ->
      Printf.printf
        "  sweep: visited %d of %d nodes (active fraction %.3f)\n"
        w.Crit.w_visited_nodes w.Crit.w_swept_nodes w.Crit.w_active_fraction);
  List.iter
    (fun v ->
      Printf.printf "  %-20s %8d critical %8d uncritical (%5.1f%%)  regions=%d\n"
        v.Crit.name (Crit.critical v) (Crit.uncritical v)
        (100. *. Crit.uncritical_rate v)
        (Scvad_checkpoint.Regions.count_regions v.Crit.regions))
    r.Crit.vars

(* Static cost model hooks: interpret the benchmark's kernel source and
   predict its tape node counts for the requested analysis window. *)
let predict_cost ~name ~at_iter ~niter =
  match
    let world = Scvad_cost.World.load () in
    Option.map
      (fun app -> Scvad_cost.Predict.predict ~at_iter ?niter world app)
      (Scvad_cost.World.find_app world name)
  with
  | Some p -> Ok p
  | None ->
      Error (Printf.sprintf "no kernel source found for benchmark %S" name)
  | exception Scvad_cost.Value.Error msg ->
      Error (Printf.sprintf "static cost model failed: %s" msg)

let plan_arg =
  let doc =
    "Dry run: print the static cost model's predicted tape nodes and —
     under --memory-budget — the planned snapshot schedule, predicted
     peak live storage and predicted replay traffic, without executing
     any analysis."
  in
  Arg.(value & flag & info [ "plan" ] ~doc)

let auto_capacity_arg =
  let doc =
    "Size the dense reverse tape from the static cost model's exact
     prediction instead of the benchmark's hand-maintained
     tape_nodes_hint (reverse mode without --memory-budget)."
  in
  Arg.(value & flag & info [ "auto-capacity" ] ~doc)

let print_plan name (p : Scvad_cost.Predict.t) plan =
  Printf.printf
    "benchmark %s: static cost plan (boundary t=%d, window until %d)\n" name
    p.Scvad_cost.Predict.p_at_iter p.Scvad_cost.Predict.p_analysis_niter;
  Printf.printf "  predicted tape: %d nodes (%.1f MB), lift %d, output %d\n"
    p.Scvad_cost.Predict.p_total
    (float_of_int p.Scvad_cost.Predict.p_total *. 24. /. 1e6)
    p.Scvad_cost.Predict.p_lift p.Scvad_cost.Predict.p_output;
  let segs = p.Scvad_cost.Predict.p_segments in
  if Array.length segs > 0 then begin
    let mn = Array.fold_left min segs.(0) segs in
    let mx = Array.fold_left max segs.(0) segs in
    Printf.printf "  segments: %d (min %d, max %d nodes)\n" (Array.length segs)
      mn mx
  end;
  match plan with
  | None ->
      Printf.printf
        "  dense tape: capacity_hint %d would be derived (committed hint %d)\n"
        p.Scvad_cost.Predict.p_total p.Scvad_cost.Predict.p_hint
  | Some (budget, pl) ->
      Printf.printf
        "  budget %d nodes -> %d slabs of %d; snapshots at [%s]\n" budget
        pl.Scvad_cost.Plan.budget_slabs pl.Scvad_cost.Plan.slab_nodes
        (String.concat "; "
           (List.map string_of_int pl.Scvad_cost.Plan.boundaries));
      Printf.printf
        "  predicted peak live %d nodes, %d replays (%d nodes re-pushed, \
         dense-sweep upper bound)\n"
        pl.Scvad_cost.Plan.peak_live_nodes pl.Scvad_cost.Plan.replays
        pl.Scvad_cost.Plan.replayed_nodes

let analyze_cmd =
  let run name mode at_iter niter jobs memory_budget schedule dry_run
      auto_capacity =
    let ( >>= ) = Result.bind in
    handle
      ( find_app name >>= fun (module A : Scvad_core.App.S) ->
        (* The planned schedule and the dry run both consult the static
           cost model; the closed-form schedules never do. *)
        let wants_cost =
          dry_run || auto_capacity
          || (schedule = `Planned && memory_budget <> None)
        in
        (match schedule with
        | `Planned when memory_budget = None ->
            Error "--tape-schedule planned requires --memory-budget"
        | _ -> Ok ())
        >>= fun () ->
        (if wants_cost then
           Result.map Option.some (predict_cost ~name ~at_iter ~niter)
         else Ok None)
        >>= fun prediction ->
        let planned =
          match (prediction, memory_budget) with
          | Some p, Some budget when dry_run || schedule = `Planned ->
              Some (budget, Scvad_cost.Plan.of_prediction p ~budget_nodes:budget)
          | _ -> None
        in
        if dry_run then begin
          let p = Option.get prediction in
          print_plan A.name p planned;
          Ok ()
        end
        else
          let schedule =
            match schedule with
            | `Binomial -> Scvad_ad.Tape.Segmented.Binomial
            | `Log_stride -> Scvad_ad.Tape.Segmented.Log_stride
            | `All_store -> Scvad_ad.Tape.Segmented.All_store
            | `Planned ->
                let _, pl = Option.get planned in
                Scvad_ad.Tape.Segmented.Planned pl.Scvad_cost.Plan.boundaries
          in
          let capacity_hint =
            if auto_capacity && memory_budget = None then
              Option.map (fun p -> p.Scvad_cost.Predict.p_total) prediction
            else None
          in
          let config =
            {
              Scvad_core.Analyzer.Config.default with
              Scvad_core.Analyzer.Config.mode;
              at_iter;
              niter;
              jobs = Some jobs;
              memory_budget;
              schedule;
              capacity_hint;
            }
          in
          let r = Scvad_core.Analyzer.run ~config (module A) in
          Ok (print_report r) )
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Scrutinize every element of the checkpoint variables with AD")
    Term.(
      const run $ app_arg $ mode_arg $ at_iter_arg $ niter_arg $ jobs_arg
      $ memory_budget_arg $ schedule_arg $ plan_arg $ auto_capacity_arg)

(* ------------------------------------------------------------------ *)
(* visualize                                                           *)
(* ------------------------------------------------------------------ *)

let var_arg =
  let doc = "Variable to render (default: every float variable)." in
  Arg.(value & opt (some string) None & info [ "var"; "v" ] ~docv:"NAME" ~doc)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let visualize_one ~out (v : Crit.var_report) =
  let dims = Scvad_nd.Shape.dims v.Crit.shape in
  Printf.printf "%s %s: %d uncritical of %d\n" v.Crit.name
    (Scvad_nd.Shape.to_string v.Crit.shape)
    (Crit.uncritical v) (Crit.total v);
  (match Array.length dims with
  | 4 ->
      let cube = Scvad_viz.Cube.component ~dims4:dims v.Crit.mask ~m:0 in
      print_string (Scvad_viz.Cube.to_ascii cube);
      Scvad_viz.Ppm.write
        (Filename.concat out (v.Crit.name ^ "_cube.ppm"))
        (Scvad_viz.Cube.to_ppm cube)
  | 3 ->
      let cube = Scvad_viz.Cube.of_mask ~dims v.Crit.mask in
      Printf.printf "fully uncritical planes: %s\n"
        (String.concat ", " (Scvad_viz.Cube.uncritical_planes cube));
      Scvad_viz.Ppm.write
        (Filename.concat out (v.Crit.name ^ "_cube.ppm"))
        (Scvad_viz.Cube.to_ppm cube)
  | _ ->
      let strip = Scvad_viz.Strip.of_report v in
      print_string (Scvad_viz.Strip.to_ascii strip));
  print_newline ()

let visualize_cmd =
  let run name var out jobs =
    handle
      (Result.map
         (fun (module A : Scvad_core.App.S) ->
           mkdir_p out;
           let r =
             Scvad_core.Analyzer.run
               ~config:Scvad_core.Analyzer.Config.(default |> with_jobs jobs)
               (module A)
           in
           let selected =
             match var with
             | None -> r.Crit.vars
             | Some v -> [ Crit.find r v ]
           in
           List.iter (visualize_one ~out) selected)
         (find_app name))
  in
  Cmd.v
    (Cmd.info "visualize"
       ~doc:"Render the critical/uncritical distribution of a variable")
    Term.(const run $ app_arg $ var_arg $ out_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* checkpoint / restart                                                *)
(* ------------------------------------------------------------------ *)

let every_arg =
  let doc = "Checkpoint every N iterations." in
  Arg.(value & opt int 2 & info [ "every"; "e" ] ~docv:"N" ~doc)

let crash_arg =
  let doc = "Inject a crash at this iteration." in
  Arg.(value & opt (some int) None & info [ "crash-at" ] ~docv:"N" ~doc)

let checkpoint_cmd =
  let run name dir every pruned crash_at niter retain retain_every inject
      no_verify =
    handle
      (Result.map
         (fun (module A : Scvad_core.App.S) ->
           let faults =
             Option.map
               (fun seed ->
                 Scvad_checkpoint.Io_fault.plan ~torn_write_rate:0.05
                   ~truncation_rate:0.05 ~bit_flip_rate:0.05
                   ~transient_rate:0.1 ~seed ())
               inject
           in
           let store =
             Scvad_checkpoint.Store.create
               ~retention:
                 { Scvad_checkpoint.Store.keep_last = retain;
                   keep_every = retain_every }
               ~verify_writes:(not no_verify) ?faults dir
           in
           let report =
             if pruned then Some (Scvad_core.Analyzer.run (module A))
             else None
           in
           (match
              Scvad_core.Harness.run_with_checkpoints ?report ?crash_at ?niter
                ~store ~every (module A)
            with
           | g ->
               Printf.printf "%s finished: output %.15g (%d iterations)\n"
                 A.name g.Scvad_core.Harness.output
                 g.Scvad_core.Harness.iterations;
               List.iter
                 (fun it ->
                   Printf.printf "  checkpoint %d: %d bytes\n" it
                     (Scvad_checkpoint.Store.disk_bytes store it))
                 (Scvad_checkpoint.Store.list_iterations store)
           | exception Scvad_checkpoint.Failure.Crash { iteration } ->
               Printf.printf "%s crashed at iteration %d (as requested)\n"
                 A.name iteration;
               Printf.printf "checkpoints available: %s\n"
                 (String.concat ", "
                    (List.map string_of_int
                       (Scvad_checkpoint.Store.list_iterations store))));
           print_fault_events faults)
         (find_app name))
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Run with periodic (optionally pruned) checkpoints, retention and \
          fault injection")
    Term.(
      const run $ app_arg $ dir_arg $ every_arg $ pruned_arg $ crash_arg
      $ niter_arg $ retain_arg $ retain_every_arg $ inject_arg $ no_verify_arg)

let resilient_arg =
  let doc =
    "Walk backward over corrupt checkpoints to the newest valid one
     instead of trusting the newest file (cold restart if none survives)."
  in
  Arg.(value & flag & info [ "resilient" ] ~doc)

let restart_cmd =
  let run name dir poison niter resilient =
    handle
      (Result.map
         (fun (module A : Scvad_core.App.S) ->
           let store = Scvad_checkpoint.Store.create dir in
           let g =
             if resilient then begin
               let r =
                 Scvad_core.Harness.restart_resilient ~poison ?niter ~store
                   (module A)
               in
               List.iter
                 (fun (it, reason) ->
                   Printf.printf "skipped checkpoint %d: %s\n" it reason)
                 r.Scvad_core.Harness.skipped;
               Printf.printf
                 (if r.Scvad_core.Harness.restored_iteration = 0 then
                    "cold restart from iteration %d\n"
                  else "restored checkpoint at iteration %d\n")
                 r.Scvad_core.Harness.restored_iteration;
               r.Scvad_core.Harness.run
             end
             else
               Scvad_core.Harness.restart_from_latest ~poison ?niter ~store
                 (module A)
           in
           let golden = Scvad_core.Harness.golden_run ?niter (module A) in
           Printf.printf "%s restarted: output %.15g (golden %.15g) -> %s\n"
             A.name g.Scvad_core.Harness.output golden.Scvad_core.Harness.output
             (if Scvad_core.Harness.verified ~golden ~restarted:g then
                "VERIFICATION SUCCESSFUL"
              else "VERIFICATION FAILED"))
         (find_app name))
  in
  Cmd.v
    (Cmd.info "restart"
       ~doc:"Restore a checkpoint, finish the run, verify")
    Term.(
      const run $ app_arg $ dir_arg $ poison_arg $ niter_arg $ resilient_arg)

(* ------------------------------------------------------------------ *)
(* impact                                                              *)
(* ------------------------------------------------------------------ *)

let threshold_arg =
  let doc =
    "Impact threshold: elements with |d out / d element| below it are
     checkpointed in single precision."
  in
  Arg.(value & opt float 1e-6 & info [ "threshold"; "t" ] ~docv:"TAU" ~doc)

let impact_cmd =
  let run name at_iter niter threshold =
    handle
      (Result.map
         (fun (module A : Scvad_core.App.S) ->
           let imp =
             Scvad_core.Analyzer.analyze_impact ~at_iter ?niter (module A)
           in
           List.iter
             (fun (v : Scvad_core.Impact.var_impact) ->
               let classes = Scvad_core.Impact.classify v ~threshold in
               let u, l, h = Scvad_core.Impact.class_counts classes in
               Printf.printf
                 "%-6s min>0 %.3e  p50 %.3e  max %.3e | uncritical %d, \
                  f32-eligible %d, f64 %d\n"
                 v.Scvad_core.Impact.name
                 (Scvad_core.Impact.min_nonzero v)
                 (Scvad_core.Impact.percentile v ~p:50.)
                 (Scvad_core.Impact.max_magnitude v)
                 u l h;
               List.iter
                 (fun (decade, count) ->
                   Printf.printf "       1e%+03d: %d elements\n" decade count)
                 (Scvad_core.Impact.log_histogram v))
             imp.Scvad_core.Impact.vars;
           let e =
             Scvad_core.Mixed.experiment
               ~at_iter:(max 1 at_iter)
               ?niter ~threshold (module A)
           in
           Printf.printf
             "mixed checkpoint @ tau=%.1e: %d -> %d bytes; measured restart \
              error %.3e (first-order bound %.3e)\n"
             threshold e.Scvad_core.Mixed.full_bytes
             e.Scvad_core.Mixed.mixed_bytes e.Scvad_core.Mixed.abs_error
             e.Scvad_core.Mixed.predicted_error)
         (find_app name))
  in
  Cmd.v
    (Cmd.info "impact"
       ~doc:
         "Per-element derivative magnitudes and the mixed-precision \
          storage/accuracy tradeoff")
    Term.(const run $ app_arg $ at_iter_arg $ niter_arg $ threshold_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run out jobs =
    mkdir_p out;
    let reports =
      List.combine Scvad_npb.Suite.all
        (Scvad_core.Analyzer.run_suite
           ~config:Scvad_core.Analyzer.Config.(default |> with_jobs jobs)
           Scvad_npb.Suite.all)
    in
    print_string (Scvad_core.Report.table1 Scvad_npb.Suite.all);
    print_newline ();
    print_string (Scvad_core.Report.table2 (List.map snd reports));
    print_newline ();
    print_string
      (Scvad_core.Report.table3
         (List.map
            (fun ((module A : Scvad_core.App.S), r) ->
              Scvad_core.Report.table3_row (module A) r)
            reports));
    0
  in
  Cmd.v (Cmd.info "report" ~doc:"Regenerate the paper's tables")
    Term.(const run $ out_arg $ jobs_arg)

let () =
  let doc = "scrutinize checkpoint variables with automatic differentiation" in
  let info = Cmd.info "scvad" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; analyze_cmd; visualize_cmd; checkpoint_cmd;
            restart_cmd; impact_cmd; report_cmd ]))
