(* scvad_lint driver: static analysis over the repo's own sources.

   Usage: lint [--format text|json] [PATH ...]

   Paths default to the four source roots; directories are walked
   recursively for .ml files.  Exit status: 0 when no error-severity
   finding survives the allowlists and pragmas, 1 otherwise, 2 on
   usage errors.  `dune build @lint` runs this over lib/ bin/ bench/
   examples/. *)

module Driver = Scvad_lint.Driver
module Finding = Scvad_lint.Finding

let () =
  let format = ref "text" in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
    ]
  in
  let usage = "lint [--format text|json] [PATH ...]" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | ps -> ps
  in
  let result = Driver.lint_paths paths in
  print_string
    (match !format with
    | "json" -> Driver.render_json result
    | _ -> Driver.render_text result);
  if Driver.has_errors result then exit 1
