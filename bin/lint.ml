(* scvad_lint driver: static analysis over the repo's own sources.

   Usage: lint [--format text|json] [--only RULE] [--fail-on SEV] [PATH ...]

   Paths default to the four source roots; directories are walked
   recursively for .ml files.  --only keeps a single rule's findings
   (and its allowlist entries); --fail-on picks the severity threshold
   that makes the run fail.

   Exit status:
     0  no finding at or above the --fail-on threshold (default error)
     1  at least one such finding
     2  usage error (unknown flag, unknown rule)

   `dune build @lint` runs this over lib/ bin/ bench/ examples/. *)

module Driver = Scvad_lint.Driver
module Finding = Scvad_lint.Finding

let usage =
  "lint [--format text|json] [--only RULE] [--fail-on error|warning] [PATH \
   ...]\n\n\
   Exit status: 0 clean, 1 findings at or above the --fail-on threshold\n\
   (default error), 2 usage errors."

let rule_names =
  [
    "domain-safety";
    "unsafe-access";
    "float-equality";
    "swallowed-exception";
    "deprecated-entrypoint";
    "pragma";
    "syntax";
  ]

let () =
  let format = ref "text" in
  let only = ref "" in
  let fail_on = ref "error" in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ( "--only",
        Arg.Symbol (rule_names, fun s -> only := s),
        " report only this rule's findings" );
      ( "--fail-on",
        Arg.Symbol ([ "error"; "warning" ], fun s -> fail_on := s),
        " fail on this severity or worse (default error)" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | ps -> ps
  in
  let result = Driver.lint_paths paths in
  let result =
    match Finding.rule_of_name !only with
    | None -> result
    | Some rule ->
        {
          result with
          Driver.findings =
            List.filter
              (fun (f : Finding.t) -> f.Finding.rule = rule)
              result.Driver.findings;
          allow_notes =
            List.filter
              (fun (n : Driver.allow_note) -> n.Driver.a_rule = rule)
              result.Driver.allow_notes;
        }
  in
  print_string
    (match !format with
    | "json" -> Driver.render_json result
    | _ -> Driver.render_text result);
  let fails =
    match !fail_on with
    | "warning" -> result.Driver.findings <> []
    | _ -> Driver.has_errors result
  in
  if fails then exit 1
