(* racecheck driver: static data-race freedom certification for the
   domain-parallel engine, cross-checked by the dynamic write-set
   sanitizer (DESIGN.md §17).

   Usage: racecheck [--format text|json] [--out FILE] [--check] [ROOT]

   ROOT is the scanned library tree (default: the repo's lib/, found by
   walking up to dune-project; lib/par and lib/sanitize are excluded by
   construction — they are the trusted runtime the certification is
   about).  --check runs the gate:

   - coverage: every syntactic Pool.map / Pool.init fan-out site must
     be classified, with zero [Unknown] verdicts — an unproved site is
     a gate failure, pragma-assumed sites pass but stay visible;
   - no shared writes: a [Shared_write] verdict (two shards provably
     reaching the same captured state) fails outright unless assumed;
   - falsification: a jobs=4 sanitizer session over the full NPB suite
     plus dedicated reverse (per-variable + fan commit) and forward
     (per-element) analyses must produce no witness — a witness against
     a [Race_free] certificate means the static pass is wrong, not just
     incomplete.

   Exit status: 0 clean, 1 on error findings or a gate violation, 2 on
   usage errors. *)

module Driver = Scvad_racefree.Driver
module Verdict = Scvad_racefree.Verdict
module Finding = Scvad_lint.Finding
module Sanitize = Scvad_sanitize.Sanitize
module Analyzer = Scvad_core.Analyzer
module Criticality = Scvad_core.Criticality

let fail_usage msg =
  prerr_endline ("racecheck: " ^ msg);
  exit 2

(* Gate part 1 — static coverage: every site classified, nothing
   unknown, nothing shared without a pragma. *)
let check_static (report : Driver.report) =
  let ok = ref true in
  if report.Driver.r_sites = [] then begin
    prerr_endline
      "racecheck: GATE VIOLATION: no fan-out sites found — the scan is \
       vacuous";
    ok := false
  end;
  List.iter
    (fun (c : Verdict.classified) ->
      if not (Verdict.gate_ok c) then begin
        Printf.eprintf
          "racecheck: GATE VIOLATION: %s: verdict %s\n"
          (Verdict.site_to_text c.Verdict.c_site)
          (Verdict.verdict_name c.Verdict.c_verdict);
        (match c.Verdict.c_verdict with
        | Verdict.Unknown obs ->
            List.iter
              (fun o -> Printf.eprintf "racecheck:   obligation: %s\n" o)
              obs
        | Verdict.Shared_write ws ->
            List.iter
              (fun (w : Verdict.shared) ->
                Printf.eprintf "racecheck:   write %s: %s\n" w.Verdict.sh_site
                  w.Verdict.sh_what)
              ws
        | _ -> ());
        ok := false
      end)
    report.Driver.r_sites;
  !ok

(* Gate part 2 — falsification: hunt witnesses against the race-free
   certificates with the dynamic sanitizer at jobs=4.  The suite run
   exercises the whole-analysis fan and its nested per-variable maps;
   the dedicated runs drive each certified fan-out shape as the
   {e outer} (sanitized) batch: per-variable mask extraction and the
   segmented backward sweep's fan commit on cg, per-element forward
   probes on cg-tiny. *)
let check_dynamic () =
  Sanitize.arm ();
  let jobs4 c = Analyzer.Config.(c |> with_jobs 4) in
  ignore
    (Analyzer.run_suite
       ~config:(jobs4 Analyzer.Config.default)
       Scvad_npb.Suite.all);
  (match Scvad_npb.Suite.find "cg" with
  | Some app ->
      ignore (Analyzer.run ~config:(jobs4 Analyzer.Config.default) app);
      ignore
        (Analyzer.run
           ~config:
             (jobs4
                Analyzer.Config.(default |> with_memory_budget 100_000))
           app)
  | None -> ());
  (match Scvad_npb.Suite.find "cg-tiny" with
  | Some app ->
      ignore
        (Analyzer.run
           ~config:
             (jobs4
                Analyzer.Config.(
                  default |> with_mode Criticality.Forward_probe))
           app)
  | None -> ());
  let stats = Sanitize.disarm () in
  List.iter
    (fun w ->
      Printf.eprintf
        "racecheck: GATE VIOLATION: sanitizer witness against a race-free \
         certificate: %s\n"
        (Sanitize.witness_to_text w))
    stats.Sanitize.witnesses;
  Printf.printf
    "racecheck: sanitizer: %d batch(es), %d span(s) recorded, %d dropped \
     under budget, %d witness(es).\n"
    stats.Sanitize.batches stats.Sanitize.spans stats.Sanitize.dropped
    (List.length stats.Sanitize.witnesses);
  stats.Sanitize.witnesses = []

let () =
  let format = ref "text" in
  let out = ref "" in
  let check = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ( "--check",
        Arg.Set check,
        " gate the certificates and hunt sanitizer witnesses at jobs=4" );
    ]
  in
  let usage = "racecheck [--format text|json] [--out FILE] [--check] [ROOT]" in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let root =
    match List.rev !roots with
    | [] -> (
        match Driver.locate_lib_dir () with
        | Some d -> d
        | None -> fail_usage "no ROOT given and no lib/ found above cwd")
    | [ d ] -> d
    | _ -> fail_usage "at most one ROOT directory"
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    fail_usage (Printf.sprintf "ROOT %s is not a directory" root);
  let report = Driver.certify ~root in
  let rendered =
    match !format with
    | "json" -> Driver.render_json report
    | _ -> Driver.render_text report
  in
  print_string rendered;
  if !out <> "" then begin
    let oc = open_out !out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc rendered)
  end;
  let has_errors =
    List.exists
      (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
      report.Driver.r_findings
  in
  let gate_ok =
    if !check then
      let static_ok = check_static report in
      (* The sanitizer hunt runs even when the static gate failed: a
         witness tells the developer which failure is a real race. *)
      let dynamic_ok = check_dynamic () in
      if static_ok && dynamic_ok then
        Printf.printf
          "racecheck: gate passed: %d site(s) classified (%d race-free, %d \
           assumed), no sanitizer witness at jobs=4.\n"
          (List.length report.Driver.r_sites)
          (Driver.count report "race-free")
          (Driver.count report "assumed");
      static_ok && dynamic_ok
    else true
  in
  if has_errors || not gate_ok then exit 1
