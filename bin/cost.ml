(* scvad_cost driver: static tape-size predictions over the NPB kernel
   sources, with an optional dynamic exactness gate.

   Usage: cost [--format text|json] [--out FILE] [--check] [ROOT]

   ROOT is the directory of kernel sources (default: the repo's
   lib/npb, found by walking up to dune-project).  --check runs the
   real dynamic reverse analysis for every predicted app and fails
   unless every prediction matches the measured tape node count
   EXACTLY, every committed tape_nodes_hint sits within 10% of its
   prediction, IS is proven to record zero float nodes, and a planned
   segmented analysis reproduces the dense masks bitwise within its
   predicted replay budget.  Exit status: 0 clean, 1 on a gate
   violation, 2 on usage errors. *)

module World = Scvad_cost.World
module Driver = Scvad_cost.Driver
module Predict = Scvad_cost.Predict
module Plan = Scvad_cost.Plan
module Criticality = Scvad_core.Criticality
module Config = Scvad_core.Analyzer.Config

let fail_usage msg =
  prerr_endline ("cost: " ^ msg);
  exit 2

let violation = ref false

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "cost: GATE VIOLATION: %s\n" msg;
      violation := true)
    fmt

(* The gate, part 1: every prediction must equal the dynamically
   measured dense tape node count, exactly — the cost model claims a
   node-for-node reproduction of the recording, so "close" is a bug. *)
let check_exactness (c : Driver.app_cost) =
  match Scvad_npb.Suite.find c.Driver.c_app with
  | None -> fail "app %s has no registered benchmark" c.Driver.c_app
  | Some (module A : Scvad_core.App.S) ->
      let report = Scvad_core.Analyzer.run (module A) in
      let measured = report.Criticality.tape_nodes in
      let predicted = c.Driver.c_p.Predict.p_total in
      if measured <> predicted then
        fail "%s: predicted %d nodes but the dense tape recorded %d"
          c.Driver.c_app predicted measured

(* The gate, part 2: committed hand-maintained hints must stay within
   10% of the prediction (the drift that motivated this pass: cg-tiny
   once sat 51% above the truth).  A zero-node analysis (IS) makes any
   relative bound meaningless; its hint is a pure preallocation floor. *)
let check_hint (c : Driver.app_cost) =
  let predicted = c.Driver.c_p.Predict.p_total in
  if predicted > 0 then begin
    let drift =
      Float.abs (float_of_int (c.Driver.c_hint - predicted))
      /. float_of_int predicted
    in
    if drift > 0.10 then
      fail "%s: tape_nodes_hint %d drifts %.0f%% from the predicted %d"
        c.Driver.c_app c.Driver.c_hint (100. *. drift) predicted
  end

(* The gate, part 3: the paper's IS observation — an integer sort
   records no float operations — must come out of the model as an exact
   zero, not a small number. *)
let check_is_zero costs =
  match
    List.find_opt (fun c -> c.Driver.c_app = "is") costs
  with
  | None -> fail "the gate did not cover IS"
  | Some c ->
      if c.Driver.c_p.Predict.p_total <> 0 then
        fail "IS predicted %d float nodes; the model must prove exactly 0"
          c.Driver.c_p.Predict.p_total

(* The gate, part 4: a multi-segment analysis under a Planned schedule
   must reproduce the dense masks bitwise, stay within the budget, and
   not exceed the planner's dense-sweep replay upper bounds. *)
let check_planned world =
  let name = "cg-tiny" and niter = 4 in
  match (World.find_app world name, Scvad_npb.Suite.find name) with
  | Some app, Some (module A : Scvad_core.App.S) -> (
      let p = Predict.predict ~niter world app in
      let budget_nodes = Stdlib.max 1 (p.Predict.p_total / 3) in
      let plan = Plan.of_prediction p ~budget_nodes in
      let dense =
        Scvad_core.Analyzer.run
          ~config:Config.(default |> with_niter niter)
          (module A)
      in
      let planned =
        Scvad_core.Analyzer.run
          ~config:
            Config.(
              default |> with_niter niter
              |> with_memory_budget budget_nodes
              |> with_schedule
                   (Scvad_ad.Tape.Segmented.Planned plan.Plan.boundaries))
          (module A)
      in
      List.iter
        (fun (v : Criticality.var_report) ->
          let d = Criticality.find dense v.Criticality.name in
          if d.Criticality.mask <> v.Criticality.mask then
            fail "%s.%s: planned-schedule mask differs from the dense analysis"
              name v.Criticality.name)
        planned.Criticality.vars;
      match planned.Criticality.tape_profile with
      | None -> fail "%s: planned analysis carries no tape profile" name
      | Some prof ->
          if prof.Criticality.t_peak_live_nodes > plan.Plan.peak_live_nodes
          then
            fail "%s: peak live %d nodes exceeds the planned %d" name
              prof.Criticality.t_peak_live_nodes plan.Plan.peak_live_nodes;
          if prof.Criticality.t_replayed_nodes > plan.Plan.replayed_nodes then
            fail "%s: %d replayed nodes exceeds the planned bound %d" name
              prof.Criticality.t_replayed_nodes plan.Plan.replayed_nodes;
          if prof.Criticality.t_replays > plan.Plan.replays then
            fail "%s: %d replays exceeds the planned bound %d" name
              prof.Criticality.t_replays plan.Plan.replays)
  | _ -> fail "planned-schedule check: %s is not available" name

let run_gate world costs =
  List.iter
    (fun c ->
      check_exactness c;
      check_hint c)
    costs;
  check_is_zero costs;
  check_planned world;
  if not !violation then
    Printf.printf
      "cost: gate passed: %d prediction(s) exact against the dynamic tape, \
       all hints within 10%%, IS proven zero-node, planned schedule \
       bitwise-identical within its replay bounds.\n"
      (List.length costs);
  not !violation

let () =
  let format = ref "text" in
  let out = ref "" in
  let check = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ( "--check",
        Arg.Set check,
        " gate the predictions against the dynamic reverse analysis" );
    ]
  in
  let usage = "cost [--format text|json] [--out FILE] [--check] [ROOT]" in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let root =
    match List.rev !roots with
    | [] -> (
        match Scvad_activity.Driver.locate_npb_dir () with
        | Some d -> d
        | None -> fail_usage "no ROOT given and no lib/npb found above cwd")
    | [ d ] -> d
    | _ -> fail_usage "at most one ROOT directory"
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    fail_usage (Printf.sprintf "ROOT %s is not a directory" root);
  match
    let world = World.load ~npb_dir:root () in
    let costs = Driver.analyze world in
    let fits = Driver.fit_families world in
    (world, costs, fits)
  with
  | exception Scvad_cost.Value.Error msg ->
      prerr_endline ("cost: interpreter error: " ^ msg);
      exit 1
  | world, costs, fits ->
      let report =
        match !format with
        | "json" -> Driver.render_json costs fits
        | _ -> Driver.render_text costs fits
      in
      print_string report;
      if !out <> "" then begin
        let oc = open_out !out in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc report)
      end;
      let gate_ok = if !check then run_gate world costs else true in
      if not gate_ok then exit 1
