(* scvad_discover driver: AutoCheck-style static discovery of the
   checkpoint set over the NPB kernel sources, cross-validated against
   the dynamic engine.

   Usage: discover [--format text|json] [--out FILE] [--check] [ROOT]

   ROOT is the directory of kernel sources (default: the repo's
   lib/npb, found by walking up to dune-project).  --check runs the
   gate:

   - containment: at every benched checkpoint boundary (the first and
     the last), no dynamically critical variable may sit in a field
     the discovery ranked prunable — the discovered set must contain
     the dynamic engine's critical elements;
   - fast path: analyzing under the discovered set (Config.discovered)
     must leave every criticality mask bitwise identical to the
     unfiltered analysis;
   - non-vacuity: every app must resolve with a non-empty ranking, and
     at least one app must prune a declared variable or add an
     undeclared field — otherwise discovery found nothing the
     declarations did not already say.

   Declared-but-prunable variables are reported as candidate dead
   weight in the declaration, with the static evidence.  Exit status:
   0 clean, 1 on error findings or a gate violation, 2 on usage
   errors. *)

module Driver = Scvad_discover.Driver
module Rank = Scvad_discover.Rank
module Finding = Scvad_lint.Finding
module Criticality = Scvad_core.Criticality
module Analyzer = Scvad_core.Analyzer

let fail_usage msg =
  prerr_endline ("discover: " ^ msg);
  exit 2

(* The benched boundaries: the first checkpoint and the latest one the
   app's analysis window admits.  Criticality varies with the boundary
   (cf. IS), so containment is checked at both extremes. *)
let boundaries (module A : Scvad_core.App.S) =
  if A.analysis_niter > 1 then [ 0; A.analysis_niter - 1 ] else [ 0 ]

(* Gate part 1 — containment: a dynamically critical variable whose
   backing field the discovery ranked prunable is a hard failure; the
   static claim "zero derivative, safe to drop" is falsified by the
   engine the paper builds. *)
let check_containment (a : Rank.app_ranks) (module A : Scvad_core.App.S) =
  let ok = ref true in
  List.iter
    (fun at_iter ->
      let report =
        Analyzer.run
          ~config:Analyzer.Config.(default |> with_at_iter at_iter)
          (module A)
      in
      List.iter
        (fun (v : Criticality.var_report) ->
          let crit = Criticality.critical v in
          if crit > 0 then
            match
              List.find_opt
                (fun (f : Rank.field_rank) ->
                  f.Rank.f_var = Some v.Criticality.name)
                a.Rank.r_fields
            with
            | Some f when Rank.is_prunable f.Rank.f_verdict ->
                Printf.eprintf
                  "discover: GATE VIOLATION: %s.%s: %d dynamically critical \
                   element(s) at boundary %d, but field %s is ranked %s (%s)\n"
                  a.Rank.r_app v.Criticality.name crit at_iter f.Rank.f_field
                  (Rank.verdict_name f.Rank.f_verdict)
                  f.Rank.f_reason;
                ok := false
            | _ -> ())
        report.Criticality.vars)
    (boundaries (module A));
  !ok

(* Gate part 2 — fast path: pre-resolving the pruned variables must
   not change any mask.  Containment plus all-false masks for skipped
   variables imply this, so a mismatch means an analyzer bug. *)
let check_fast_path (ps : Rank.proposals) (module A : Scvad_core.App.S) =
  let unfiltered = Analyzer.run (module A) in
  let filtered =
    Analyzer.run
      ~config:Analyzer.Config.(default |> with_discovered ps)
      (module A)
  in
  List.for_all
    (fun (v : Criticality.var_report) ->
      let f = Criticality.find filtered v.Criticality.name in
      if f.Criticality.mask = v.Criticality.mask then true
      else begin
        Printf.eprintf
          "discover: GATE VIOLATION: %s.%s: discovered-mode mask differs \
           from the unfiltered analysis\n"
          A.name v.Criticality.name;
        false
      end)
    unfiltered.Criticality.vars

(* Candidate dead weight: hand-declared variables the ranking prunes,
   reported with the static evidence (not a failure — the declaration
   over-approximates, which is safe, just wasteful). *)
let report_dead_weight (a : Rank.app_ranks) =
  List.iter
    (fun (f : Rank.field_rank) ->
      match f.Rank.f_var with
      | Some v ->
          Printf.printf
            "discover: %s: declared variable %s is candidate dead weight: \
             field %s ranked %s — %s\n"
            a.Rank.r_app v f.Rank.f_field
            (Rank.verdict_name f.Rank.f_verdict)
            f.Rank.f_reason
      | None -> ())
    (Rank.pruned_vars a)

let run_gate (ps : Rank.proposals) =
  let ok = ref true in
  let checked =
    List.filter_map
      (fun (a : Rank.app_ranks) ->
        if not a.Rank.r_resolved then begin
          Printf.eprintf
            "discover: GATE VIOLATION: app %s did not resolve statically — \
             the proposal is vacuous there\n"
            a.Rank.r_app;
          ok := false
        end;
        if a.Rank.r_fields = [] then begin
          Printf.eprintf
            "discover: GATE VIOLATION: app %s has no ranked fields\n"
            a.Rank.r_app;
          ok := false
        end;
        match Scvad_npb.Suite.find a.Rank.r_app with
        | Some app -> Some (a, app)
        | None ->
            Printf.eprintf
              "discover: GATE VIOLATION: app %s has no registered benchmark\n"
              a.Rank.r_app;
            ok := false;
            None)
      ps
  in
  if ps = [] then begin
    prerr_endline "discover: GATE VIOLATION: no apps ranked";
    ok := false
  end;
  let dividend =
    List.filter
      (fun (a : Rank.app_ranks) ->
        Rank.pruned_vars a <> [] || Rank.added_fields a <> [])
      ps
  in
  if ps <> [] && dividend = [] then begin
    prerr_endline
      "discover: GATE VIOLATION: discovery neither pruned a declared \
       variable nor added an undeclared field anywhere — the pass is \
       vacuous";
    ok := false
  end;
  List.iter
    (fun ((a : Rank.app_ranks), (module A : Scvad_core.App.S)) ->
      report_dead_weight a;
      if not (check_containment a (module A)) then ok := false;
      if Rank.pruned_float_vars a <> [] then
        if not (check_fast_path ps (module A)) then ok := false)
    checked;
  if !ok then
    Printf.printf
      "discover: gate passed: %d app(s) ranked, %d field(s) required, %d \
       prunable, %d unknown; no pruned field dynamically critical; \
       discovered-mode masks identical.\n"
      (List.length ps)
      (Rank.count_verdict ps Rank.Required)
      (Rank.count_verdict ps Rank.Prunable_recomputable
      + Rank.count_verdict ps Rank.Prunable_dead)
      (Rank.count_verdict ps Rank.Unknown);
  !ok

let () =
  let format = ref "text" in
  let out = ref "" in
  let check = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ( "--check",
        Arg.Set check,
        " gate the proposals against the dynamic reverse analysis" );
    ]
  in
  let usage = "discover [--format text|json] [--out FILE] [--check] [ROOT]" in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let root =
    match List.rev !roots with
    | [] -> (
        match Driver.locate_npb_dir () with
        | Some d -> d
        | None -> fail_usage "no ROOT given and no lib/npb found above cwd")
    | [ d ] -> d
    | _ -> fail_usage "at most one ROOT directory"
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    fail_usage (Printf.sprintf "ROOT %s is not a directory" root);
  let proposals, findings = Driver.analyze_dir root in
  let report =
    match !format with
    | "json" -> Driver.render_json proposals findings
    | _ -> Driver.render_text proposals findings
  in
  print_string report;
  if !out <> "" then begin
    let oc = open_out !out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc report)
  end;
  let has_errors =
    List.exists
      (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
      findings
  in
  let gate_ok = if !check then run_gate proposals else true in
  if has_errors || not gate_ok then exit 1
