(* scvad_guard driver: non-differentiable dataflow certificates over
   the NPB kernel sources, with a dynamic perturbation-falsifier gate.

   Usage: guard [--format text|json] [--out FILE] [--check]
                [--trials N] [--seed N] [--baseline FILE] [ROOT]

   ROOT is the directory of kernel sources (default: the repo's
   lib/npb, found by walking up to dune-project).  --check runs the
   full gate:

   (a) every variable of every app is classified (no Unknown left
       after pragmas) and every app's analyses resolved;
   (b) witness hunt: for Control_tainted variables, seeded
       perturbations of elements the reverse analysis calls uncritical
       must produce at least one bitwise output divergence somewhere —
       the concrete unsoundness witness the certificate predicts;
   (c) Smooth validation: the same perturbations on Smooth variables
       (pragma-assumed ones included) must produce no witness at all;
   (d) every app's falsifier-hardened masks still pass the
       crash/restart verification harness.

   --baseline compares against a committed certificate JSON and fails
   if any previously-Smooth variable regressed to Control_tainted or
   Unknown without a pragma.  Exit status: 0 clean, 1 on error findings
   or a gate violation, 2 on usage errors. *)

module Driver = Scvad_guard.Driver
module Cert = Scvad_guard.Cert
module Finding = Scvad_lint.Finding
module Analyzer = Scvad_core.Analyzer
module Falsifier = Scvad_core.Falsifier
module Harness = Scvad_core.Harness
module Criticality = Scvad_core.Criticality

let fail_usage msg =
  prerr_endline ("guard: " ^ msg);
  exit 2

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

(* Gate (a): nothing unresolved, nothing unclassified.  An Unknown
   certificate is an unfinished proof — the fix is either sharpening
   the pass or adding a justified pragma, never shipping "don't know". *)
let check_classified (certs : Cert.certificates) =
  let ok = ref true in
  List.iter
    (fun (a : Cert.app_certs) ->
      if not a.Cert.resolved then begin
        Printf.eprintf "guard: GATE VIOLATION: %s: analysis unresolved\n"
          a.Cert.app;
        ok := false
      end;
      List.iter
        (fun (v : Cert.var_cert) ->
          if v.Cert.class_ = Cert.Unknown then begin
            Printf.eprintf
              "guard: GATE VIOLATION: %s.%s is Unknown (%s)\n" a.Cert.app
              v.Cert.var v.Cert.reason;
            ok := false
          end)
        a.Cert.certs)
    certs;
  !ok

(* Per-app context for the dynamic parts of the gate. *)
type app_ctx = {
  x_certs : Cert.app_certs;
  x_app : (module Scvad_core.App.S);
  x_report : Criticality.report;  (* naive AD verdict *)
}

let contexts (certs : Cert.certificates) =
  let ok = ref true in
  let ctxs =
    List.filter_map
      (fun (a : Cert.app_certs) ->
        match Scvad_npb.Suite.find a.Cert.app with
        | Some app ->
            Some
              { x_certs = a; x_app = app; x_report = Analyzer.run app }
        | None ->
            Printf.eprintf
              "guard: GATE VIOLATION: app %s has no registered benchmark\n"
              a.Cert.app;
            ok := false;
            None)
      certs
  in
  (ctxs, !ok)

let restrict_targets targets vars =
  List.filter (fun t -> List.mem t.Falsifier.t_var vars) targets

(* Gate (b): hunt witnesses on Control_tainted variables at both the
   window ends — boundary 0 (perturb initial state, rerun everything)
   and boundary = niter (perturb final state, recompute the output
   reduction only; IS's bucket ranks live here). *)
let hunt_witnesses ~trials ~seed ctx =
  let (module A : Scvad_core.App.S) = ctx.x_app in
  let tainted = Cert.tainted_vars ctx.x_certs in
  let targets =
    restrict_targets (Falsifier.targets_of_report ctx.x_report) tainted
  in
  if targets = [] then []
  else
    let niter = A.analysis_niter in
    let per_boundary = max 1 (trials / 2) in
    List.concat_map
      (fun boundary ->
        let o =
          Falsifier.run ~boundary ~niter ~trials:per_boundary ~seed ~targets
            ctx.x_app
        in
        if not o.Falsifier.f_stable then
          Printf.eprintf
            "guard: warning: %s: continuation not bitwise stable at boundary \
             %d; witness hunt skipped there\n"
            A.name boundary;
        o.Falsifier.f_witnesses)
      [ 0; niter ]

(* Gate (c): the same perturbations on Smooth variables must never
   diverge.  Smooth floats contribute their uncritical elements; Smooth
   integer variables contribute every element (AD never judged them, so
   the certificate alone claims their irrelevance). *)
let smooth_targets ctx =
  restrict_targets
    (Falsifier.targets_of_report ctx.x_report)
    (Cert.smooth_vars ctx.x_certs)

let validate_smooth ~trials ~seed ctx =
  let (module A : Scvad_core.App.S) = ctx.x_app in
  let targets = smooth_targets ctx in
  if targets = [] || trials = 0 then (0, [])
  else
    let o =
      Falsifier.run ~boundary:0 ~niter:A.analysis_niter ~trials ~seed ~targets
        ctx.x_app
    in
    if not o.Falsifier.f_stable then begin
      Printf.eprintf
        "guard: warning: %s: continuation not bitwise stable; Smooth \
         validation skipped\n"
        A.name;
      (0, [])
    end
    else (o.Falsifier.f_trials, o.Falsifier.f_witnesses)

(* Split [total] Smooth-validation trials across apps, proportional to
   1 / tape_nodes_hint (cheap apps absorb more trials) with a floor so
   every app gets real coverage. *)
let validation_shares ~total ctxs =
  let floor_trials = 24 in
  let weight ctx =
    let (module A : Scvad_core.App.S) = ctx.x_app in
    1.0 /. float_of_int (max 1 A.tape_nodes_hint)
  in
  let wsum = List.fold_left (fun acc c -> acc +. weight c) 0.0 ctxs in
  List.map
    (fun ctx ->
      let share =
        if wsum <= 0.0 then floor_trials
        else
          max floor_trials
            (int_of_float (float_of_int total *. weight ctx /. wsum))
      in
      (ctx, share))
    ctxs

(* Gate (d): the hardened masks must still restart correctly. *)
let check_restart ctx witnesses =
  let (module A : Scvad_core.App.S) = ctx.x_app in
  let hardened = Falsifier.harden ctx.x_report witnesses in
  let r = Harness.verify_report ~report:hardened ctx.x_app in
  if not r.Harness.verified then
    Printf.eprintf
      "guard: GATE VIOLATION: %s: hardened masks failed crash/restart \
       verification (golden %.17g, restarted %.17g)\n"
      A.name r.Harness.golden.Harness.output
      r.Harness.restarted.Harness.output;
  r.Harness.verified

let describe_witness app (w : Falsifier.witness) =
  Printf.sprintf "%s.%s[%d] at boundary %d (delta %g%s)" app w.Falsifier.w_var
    w.Falsifier.w_element w.Falsifier.w_boundary w.Falsifier.w_delta
    (match w.Falsifier.w_fd with
    | Some fd -> Printf.sprintf ", fd %g" fd
    | None -> "")

let run_gate ~trials ~seed (certs : Cert.certificates) =
  let ok = ref (check_classified certs) in
  let ctxs, ctx_ok = contexts certs in
  if not ctx_ok then ok := false;
  (* Witness hunt: a quarter of the budget, split over the apps that
     have Control_tainted variables at all. *)
  let hunters =
    List.filter (fun c -> Cert.tainted_vars c.x_certs <> []) ctxs
  in
  let hunt_share =
    match hunters with [] -> 0 | hs -> max 1 (trials / 4 / List.length hs)
  in
  let witnesses =
    List.concat_map
      (fun ctx ->
        let ws = hunt_witnesses ~trials:hunt_share ~seed ctx in
        let (module A : Scvad_core.App.S) = ctx.x_app in
        List.iter
          (fun w ->
            Printf.printf "guard: witness: %s\n" (describe_witness A.name w))
          (match ws with [] -> [] | w :: _ -> [ w ]);
        List.map (fun w -> (ctx, w)) ws)
      hunters
  in
  if hunters <> [] && witnesses = [] then begin
    prerr_endline
      "guard: GATE VIOLATION: no Control_tainted variable yielded a \
       perturbation witness — the certificates predict at least one";
    ok := false
  end;
  (* Smooth validation: the rest of the budget, over the apps that
     actually expose Smooth candidates. *)
  let validation_total = trials * 3 / 4 in
  let validators = List.filter (fun c -> smooth_targets c <> []) ctxs in
  let smooth_trials = ref 0 in
  List.iter
    (fun (ctx, share) ->
      let t, ws = validate_smooth ~trials:share ~seed ctx in
      smooth_trials := !smooth_trials + t;
      List.iter
        (fun w ->
          let (module A : Scvad_core.App.S) = ctx.x_app in
          Printf.eprintf
            "guard: GATE VIOLATION: Smooth variable falsified: %s\n"
            (describe_witness A.name w);
          ok := false)
        ws)
    (validation_shares ~total:validation_total validators);
  (* Restart verification with hardened masks, all apps. *)
  List.iter
    (fun ctx ->
      let ws =
        List.filter_map
          (fun (c, w) -> if c == ctx then Some w else None)
          witnesses
      in
      if not (check_restart ctx ws) then ok := false)
    ctxs;
  if !ok then
    Printf.printf
      "guard: gate passed: %d app(s); %d witness(es) on control-tainted \
       variables; %d Smooth-validation trial(s), none falsified; hardened \
       masks verified on restart.\n"
      (List.length ctxs) (List.length witnesses) !smooth_trials;
  !ok

(* ------------------------------------------------------------------ *)
(* Baseline regression check                                           *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A variable certified Smooth in the committed baseline must stay
   Smooth; a silent regression to Control_tainted or Unknown means the
   kernel (or the pass) changed in a way that invalidates masks pruned
   under the old certificate. *)
let check_baseline ~baseline (certs : Cert.certificates) =
  let base =
    try Driver.certs_of_json (read_file baseline)
    with e ->
      fail_usage
        (Printf.sprintf "cannot read baseline %s: %s" baseline
           (Printexc.to_string e))
  in
  let ok = ref true in
  List.iter
    (fun (ba : Cert.app_certs) ->
      List.iter
        (fun (bv : Cert.var_cert) ->
          if bv.Cert.class_ = Cert.Smooth then
            match Cert.find certs ~app:ba.Cert.app ~var:bv.Cert.var with
            | None ->
                Printf.eprintf
                  "guard: GATE VIOLATION: %s.%s was Smooth in the baseline \
                   but is gone\n"
                  ba.Cert.app bv.Cert.var;
                ok := false
            | Some cv ->
                if cv.Cert.class_ <> Cert.Smooth then begin
                  Printf.eprintf
                    "guard: GATE VIOLATION: %s.%s regressed from Smooth to \
                     %s without a pragma (%s)\n"
                    ba.Cert.app bv.Cert.var
                    (Cert.class_name cv.Cert.class_)
                    cv.Cert.reason;
                  ok := false
                end)
        ba.Cert.certs)
    base;
  !ok

(* ------------------------------------------------------------------ *)

let () =
  let format = ref "text" in
  let out = ref "" in
  let check = ref false in
  let trials = ref 10_000 in
  let seed = ref 0 in
  let baseline = ref "" in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ("--out", Arg.Set_string out, "FILE also write the report to FILE");
      ( "--check",
        Arg.Set check,
        " run the falsifier gate over the certificates" );
      ( "--trials",
        Arg.Set_int trials,
        "N total perturbation trials for --check (default 10000)" );
      ("--seed", Arg.Set_int seed, "N falsifier RNG seed (default 0)");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE fail if a Smooth certificate in FILE regressed" );
    ]
  in
  let usage =
    "guard [--format text|json] [--out FILE] [--check] [--trials N] [--seed \
     N] [--baseline FILE] [ROOT]"
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !trials < 1 then fail_usage "--trials must be >= 1";
  let root =
    match List.rev !roots with
    | [] -> (
        match Driver.locate_npb_dir () with
        | Some d -> d
        | None -> fail_usage "no ROOT given and no lib/npb found above cwd")
    | [ d ] -> d
    | _ -> fail_usage "at most one ROOT directory"
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    fail_usage (Printf.sprintf "ROOT %s is not a directory" root);
  let certs, findings = Driver.analyze_dir root in
  let report =
    match !format with
    | "json" -> Driver.render_json certs findings
    | _ -> Driver.render_text certs findings
  in
  print_string report;
  if !out <> "" then begin
    let oc = open_out !out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc report)
  end;
  let has_errors =
    List.exists
      (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
      findings
  in
  let baseline_ok =
    if !baseline <> "" then check_baseline ~baseline:!baseline certs else true
  in
  let gate_ok =
    if !check then run_gate ~trials:!trials ~seed:!seed certs else true
  in
  if has_errors || not baseline_ok || not gate_ok then exit 1
