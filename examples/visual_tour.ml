(* visual_tour: regenerates the paper's six distribution figures in the
   terminal (Figures 3-8), with compact renderings for the large
   variables.

   Run with: dune exec examples/visual_tour.exe *)

module Crit = Scvad_core.Criticality
module Viz = Scvad_viz

let analyze name =
  match Scvad_npb.Suite.find name with
  | Some (module A : Scvad_core.App.S) -> Scvad_core.Analyzer.run (module A)
  | None -> failwith name

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  let bt = analyze "bt" in
  let mg = analyze "mg" in
  let cg = analyze "cg" in
  let lu = analyze "lu" in

  header "Fig 3 — the shared ADI cube pattern (BT u, component 0)";
  let cube = Viz.Cube.component ~dims4:[| 12; 13; 13; 5 |]
      (Crit.find bt "u").Crit.mask ~m:0
  in
  Printf.printf "uncritical planes: %s\n"
    (String.concat ", " (Viz.Cube.uncritical_planes cube));
  Printf.printf "one slice (k=5) of the 12x13x13 cube:\n";
  print_string (Viz.Ascii.legend ~color:false);
  print_string (Viz.Ascii.grid ~rows:13 ~cols:13 (Viz.Cube.slice cube ~at:5));

  header "Fig 4 — MG u as a strip";
  print_string (Viz.Strip.to_ascii (Viz.Strip.of_report (Crit.find mg "u")));

  header "Fig 5 — MG r: the repetitive pattern";
  let r_strip = Viz.Strip.of_report (Crit.find mg "r") in
  print_string (Viz.Strip.to_ascii r_strip);
  Printf.printf "zoom into three rows of the finest level (stride 34):\n";
  Printf.printf "|%s|\n" (Viz.Strip.window ~width:102 r_strip ~lo:(34 * 34) ~hi:((34 * 34) + (3 * 34)));

  header "Fig 6 — CG x";
  print_string (Viz.Strip.to_ascii (Viz.Strip.of_report (Crit.find cg "x")));

  header "Fig 7 — LU u[x][y][z][4]";
  let u4 = Viz.Cube.component ~dims4:[| 12; 13; 13; 5 |]
      (Crit.find lu "u").Crit.mask ~m:4
  in
  let crit, unc = Viz.Cube.counts u4 in
  Printf.printf "%d critical / %d uncritical\n" crit unc;
  Printf.printf "boundary slice (k=0) vs interior slice (k=5):\n";
  print_string (Viz.Ascii.grid ~rows:13 ~cols:13 (Viz.Cube.slice u4 ~at:0));
  print_newline ();
  print_string (Viz.Ascii.grid ~rows:13 ~cols:13 (Viz.Cube.slice u4 ~at:5));

  header "Fig 8 — FT y (padding column at x = 64)";
  let ft = analyze "ft" in
  let y = Crit.find ft "y" in
  Printf.printf "%d uncritical of %d; " (Crit.uncritical y) (Crit.total y);
  let cube = Viz.Cube.of_mask ~dims:[| 64; 64; 65 |] y.Crit.mask in
  Printf.printf "uncritical planes: %s\n"
    (String.concat ", " (Viz.Cube.uncritical_planes cube));
  Printf.printf "first 4 rows of slice z=0 (65th column is the padding):\n";
  let sl = Viz.Cube.slice cube ~at:0 in
  print_string (Viz.Ascii.grid ~rows:4 ~cols:65 (Array.sub sl 0 (4 * 65)))
