(* heat2d: criticality analysis of a 2-D heat-equation solver whose
   state array is over-allocated — the "imperfect coding" pattern the
   paper finds in BT, SP and FT, reproduced on a standalone mini-app.

   The temperature field is declared 36x36 but the solver was written
   for a 32x32 grid: rows/columns 32..35 exist, are initialized, are
   checkpointed by a naive library — and never influence the result.
   The analysis proves it, the pruned checkpoint drops them, and a
   poisoned restart still verifies.

   Run with: dune exec examples/heat2d.exe *)

open Scvad_ad
open Scvad_core

let alloc = 36 (* declared extent *)
let used = 32 (* extent the solver actually uses *)

module Heat : App.S = struct
  let name = "heat2d"
  let description = "2-D heat equation on an over-allocated grid"
  let default_niter = 200
  let analysis_niter = 2
  let tape_nodes_hint = 1 lsl 12
  let int_taint_masks = None

  module Make (S : Scalar.S) = struct
    type scalar = S.t

    type state = {
      t : S.t array; (* [36][36], row-major; checkpoint variable *)
      work : S.t array;
      mutable iter_done : int;
    }

    let idx r c = (r * alloc) + c

    (* A hot spot in the middle, insulated borders, and arbitrary junk
       in the over-allocated band (it is real data a naive checkpoint
       would happily save). *)
    let create () =
      let t =
        Array.init (alloc * alloc) (fun o ->
            let r = o / alloc and c = o mod alloc in
            if r >= used || c >= used then S.of_float 99.9
            else if r >= 12 && r < 20 && c >= 12 && c < 20 then S.of_float 100.
            else S.of_float (20. +. (0.01 *. float_of_int o)))
      in
      { t; work = Array.make (alloc * alloc) S.zero; iter_done = 0 }

    let run st ~from ~until =
      let k = S.of_float 0.2 in
      for _ = from to until - 1 do
        for r = 1 to used - 2 do
          for c = 1 to used - 2 do
            st.work.(idx r c) <-
              S.(
                st.t.(idx r c)
                +. (k
                    *. (st.t.(idx (r - 1) c)
                       +. st.t.(idx (r + 1) c)
                       +. st.t.(idx r (c - 1))
                       +. st.t.(idx r (c + 1))
                       -. (of_float 4. *. st.t.(idx r c)))))
          done
        done;
        for r = 1 to used - 2 do
          for c = 1 to used - 2 do
            st.t.(idx r c) <- st.work.(idx r c)
          done
        done;
        st.iter_done <- st.iter_done + 1
      done

    let iterations_done st = st.iter_done

    (* Total heat over the used grid. *)
    let output st =
      let acc = ref S.zero in
      for r = 0 to used - 1 do
        for c = 0 to used - 1 do
          acc := S.(!acc +. st.t.(idx r c))
        done
      done;
      !acc

    let float_vars st =
      [ Variable.of_array ~name:"t" ~doc:"temperature field (over-allocated)"
          (Scvad_nd.Shape.create [ alloc; alloc ])
          st.t ]

    let int_vars st =
      [ {
          Variable.iname = "it";
          ishape = Scvad_nd.Shape.scalar;
          iget = (fun _ -> st.iter_done);
          iset = (fun _ v -> st.iter_done <- v);
          icrit = Variable.Always_critical "main loop index";
          idoc = "main loop index";
        } ]
  end
end

let () =
  Printf.printf "== heat2d: %dx%d allocated, %dx%d used\n" alloc alloc used used;
  let report = Analyzer.run (module Heat) in
  let v = Criticality.find report "t" in
  Printf.printf "t: %d critical / %d uncritical of %d (%.1f%% prunable)\n\n"
    (Criticality.critical v) (Criticality.uncritical v) (Criticality.total v)
    (100. *. Criticality.uncritical_rate v);
  (* Render the 2-D mask: the over-allocated band shows up in blue. *)
  print_string (Scvad_viz.Ascii.legend ~color:false);
  print_string
    (Scvad_viz.Ascii.grid ~rows:alloc ~cols:alloc v.Criticality.mask);
  print_newline ();
  (* Storage effect. *)
  let row = Report.table3_row (module Heat) report in
  Printf.printf "checkpoint: %d bytes full -> %d bytes pruned (%.1f%% saved)\n"
    row.Report.original_bytes row.Report.optimized_bytes
    (100. *. Report.saved_rate row);
  (* Crash / pruned restart / verification. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scvad_heat2d" in
  let store = Scvad_checkpoint.Store.create dir in
  let e =
    Harness.crash_restart_experiment ~report ~store ~every:25 ~crash_at:160
      ~poison:Scvad_checkpoint.Failure.Nan (module Heat)
  in
  Printf.printf "crash at iter 160, pruned NaN-poisoned restart: %s\n"
    (if e.Harness.verified then "VERIFICATION SUCCESSFUL"
     else "VERIFICATION FAILED");
  Scvad_checkpoint.Store.wipe store
