(* Quickstart: the whole pipeline on twenty lines of application code.

   1. reverse-mode AD on a two-variable function (the paper's Fig. 1);
   2. a tiny iterative application with an over-allocated array;
   3. scrutiny of its checkpoint variables (who is critical?);
   4. a pruned checkpoint, a poisoned restore, and verification.

   Run with: dune exec examples/quickstart.exe *)

open Scvad_ad
open Scvad_core

(* ------------------------------------------------------------------ *)
(* 1. Reverse-mode AD in isolation (paper Fig. 1: f = (x + y) * a * x) *)
(* ------------------------------------------------------------------ *)

let () =
  let tape = Tape.create () in
  let module S = Reverse.Scalar_of (struct
    let tape = tape
  end) in
  let x = Reverse.var tape 3. in
  let y = Reverse.var tape 4. in
  let a = S.of_float 2.5 in
  let f = S.((x +. y) *. a *. x) in
  let g = Reverse.backward tape f in
  Printf.printf "== reverse-mode AD (Fig. 1)\n";
  Printf.printf "f(3,4) = %g, df/dx = %g, df/dy = %g  (%d tape nodes)\n\n"
    (Reverse.value f) (Reverse.grad g x) (Reverse.grad g y) (Tape.length tape)

(* ------------------------------------------------------------------ *)
(* 2. A tiny application with an over-allocated state array            *)
(* ------------------------------------------------------------------ *)

(* 16 slots allocated, but the algorithm only ever touches the first
   12 — the "imperfect coding" pattern the paper finds all over NPB. *)
module Demo : App.S = struct
  let name = "demo"
  let description = "toy relaxation with an over-allocated state array"
  let default_niter = 10
  let analysis_niter = 2
  let tape_nodes_hint = 1 lsl 12
  let int_taint_masks = None

  module Make (S : Scalar.S) = struct
    type scalar = S.t
    type state = { a : S.t array; mutable iter_done : int }

    let create () =
      { a = Array.init 16 (fun i -> S.of_float (1. +. float_of_int i)); iter_done = 0 }

    let run st ~from ~until =
      for _ = from to until - 1 do
        for i = 1 to 10 do
          st.a.(i) <-
            S.(
              (of_float 0.5 *. st.a.(i))
              +. (of_float 0.25 *. (st.a.(i - 1) +. st.a.(i + 1))))
        done;
        st.iter_done <- st.iter_done + 1
      done

    let iterations_done st = st.iter_done

    let output st =
      let acc = ref S.zero in
      for i = 0 to 11 do
        acc := S.(!acc +. st.a.(i))
      done;
      !acc

    let float_vars st =
      [ Variable.of_array ~name:"a" ~doc:"relaxation state"
          (Scvad_nd.Shape.create [ 16 ])
          st.a ]

    let int_vars st =
      [ {
          Variable.iname = "it";
          ishape = Scvad_nd.Shape.scalar;
          iget = (fun _ -> st.iter_done);
          iset = (fun _ v -> st.iter_done <- v);
          icrit = Variable.Always_critical "main loop index";
          idoc = "main loop index";
        } ]
  end
end

(* ------------------------------------------------------------------ *)
(* 3. Scrutinize                                                       *)
(* ------------------------------------------------------------------ *)

let report = Analyzer.run (module Demo)

let () =
  Printf.printf "== scrutiny of the demo app\n";
  List.iter
    (fun v ->
      Printf.printf "%-3s critical %2d / uncritical %2d   spans %s\n"
        v.Criticality.name (Criticality.critical v) (Criticality.uncritical v)
        (Scvad_checkpoint.Regions.to_string v.Criticality.regions))
    report.Criticality.vars;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* 4. Crash, pruned restart with NaN poison, verification              *)
(* ------------------------------------------------------------------ *)

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scvad_quickstart" in
  let store = Scvad_checkpoint.Store.create dir in
  let e =
    Harness.crash_restart_experiment ~report ~store ~every:3 ~crash_at:7
      ~poison:Scvad_checkpoint.Failure.Nan (module Demo)
  in
  Printf.printf "== crash/restart with a pruned, NaN-poisoned checkpoint\n";
  Printf.printf "golden output    = %.15g\n" e.Harness.golden.Harness.output;
  Printf.printf "restarted output = %.15g\n" e.Harness.restarted.Harness.output;
  Printf.printf "verification     = %s\n"
    (if e.Harness.verified then "SUCCESSFUL" else "FAILED");
  Scvad_checkpoint.Store.wipe store
