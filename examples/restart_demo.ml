(* restart_demo: the paper's §IV-C experiment on the real CG benchmark,
   narrated step by step.

   - golden run of NPB CG class S (the output is NPB's official
     verification value zeta = 8.59717750786...);
   - a protected run that checkpoints every 3 iterations with only the
     critical elements (x[1..1400], it) and crashes at iteration 11;
   - a restart that restores the last checkpoint, fills the uncritical
     elements (x[0], x[1401]) with NaN, and finishes the run;
   - bitwise verification against the golden output.

   Run with: dune exec examples/restart_demo.exe *)

open Scvad_core
module Cg = Scvad_npb.Cg

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scvad_restart_demo" in
  let store =
    Scvad_checkpoint.Store.create
      ~retention:{ Scvad_checkpoint.Store.keep_last = Some 3; keep_every = None }
      dir
  in
  Scvad_checkpoint.Store.wipe store;

  Printf.printf "== 1. scrutiny of CG's checkpoint variables\n%!";
  let t0 = Unix.gettimeofday () in
  let report = Analyzer.run (module Cg.App) in
  Printf.printf "analysis: %.2fs, %d tape nodes\n" (Unix.gettimeofday () -. t0)
    report.Criticality.tape_nodes;
  List.iter
    (fun v ->
      Printf.printf "  %-3s -> %d uncritical of %d, critical spans %s\n"
        v.Criticality.name (Criticality.uncritical v) (Criticality.total v)
        (Scvad_checkpoint.Regions.to_string v.Criticality.regions))
    report.Criticality.vars;

  Printf.printf "\n== 2. golden run (15 iterations)\n%!";
  let golden = Harness.golden_run (module Cg.App) in
  Printf.printf "zeta + ||r|| = %.13f  (NPB class-S reference zeta is 8.5971775078648)\n"
    golden.Harness.output;

  Printf.printf "\n== 3. protected run: pruned checkpoints every 3, crash at 11\n%!";
  (match
     Harness.run_with_checkpoints ~report ~crash_at:11 ~store ~every:3
       (module Cg.App)
   with
  | _ -> assert false
  | exception Scvad_checkpoint.Failure.Crash { iteration } ->
      Printf.printf "crashed at iteration %d; surviving checkpoints: %s\n"
        iteration
        (String.concat ", "
           (List.map string_of_int (Scvad_checkpoint.Store.list_iterations store))));
  List.iter
    (fun it ->
      Printf.printf "  checkpoint %2d: %d bytes on disk\n" it
        (Scvad_checkpoint.Store.disk_bytes store it))
    (Scvad_checkpoint.Store.list_iterations store);

  Printf.printf "\n== 4. restart from the latest checkpoint (NaN-poisoned)\n%!";
  let restarted =
    Harness.restart_from_latest ~poison:Scvad_checkpoint.Failure.Nan ~store
      (module Cg.App)
  in
  Printf.printf "restarted output = %.13f\n" restarted.Harness.output;
  Printf.printf "golden output    = %.13f\n" golden.Harness.output;
  Printf.printf "verification     = %s\n"
    (if Harness.verified ~golden ~restarted then "SUCCESSFUL (bitwise)"
     else "FAILED");
  Scvad_checkpoint.Store.wipe store
